#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/bytes.h"

namespace ecomp::obs {

SlidingHistogram::SlidingHistogram(Options opt) : opt_(opt) {
  if (opt_.slices < 1) opt_.slices = 1;
  if (opt_.shards < 1) opt_.shards = 1;
  if (!(opt_.window_s > 0.0)) opt_.window_s = 60.0;
  slice_ns_ = static_cast<std::uint64_t>(
      std::max(opt_.window_s / opt_.slices * 1e9, 1.0));
  counts_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(opt_.shards) *
      static_cast<std::size_t>(opt_.slices) * kBuckets);
  slice_epoch_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(opt_.slices));
  slice_sum_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(opt_.slices));
  total_ = std::vector<std::atomic<std::uint64_t>>(kBuckets);
  start_ns_ = now_ns();
  // Epoch 0 is a real epoch at start-up; mark every slot stale so the
  // first record into a slot claims it explicitly.
  for (auto& e : slice_epoch_) e.store(~std::uint64_t{0});
}

std::uint64_t SlidingHistogram::now_ns() const {
  if (clock_) return clock_();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SlidingHistogram::set_clock_for_test(
    std::function<std::uint64_t()> now_ns_fn) {
  clock_ = std::move(now_ns_fn);
  start_ns_ = now_ns();
}

void SlidingHistogram::refresh_slot(int slot, std::uint64_t e) {
  std::uint64_t cur = slice_epoch_[static_cast<std::size_t>(slot)].load(
      std::memory_order_relaxed);
  if (cur == e) return;
  // Claim the rotation: exactly one thread clears the slot for epoch e.
  if (!slice_epoch_[static_cast<std::size_t>(slot)]
           .compare_exchange_strong(cur, e, std::memory_order_acq_rel))
    return;  // someone else rotated (to e or newer) — just record
  for (int s = 0; s < opt_.shards; ++s)
    for (int b = 0; b < kBuckets; ++b)
      cell(s, slot, b).store(0, std::memory_order_relaxed);
  slice_sum_[static_cast<std::size_t>(slot)].store(0,
                                                   std::memory_order_relaxed);
}

void SlidingHistogram::record(std::uint64_t v) {
  const int idx = std::min(bucket_index(v), kBuckets - 1);
  const std::uint64_t e = now_ns() / slice_ns_;
  const int slot = static_cast<int>(e % static_cast<std::uint64_t>(
                                            opt_.slices));
  refresh_slot(slot, e);

  // Shard by thread: a dense per-thread ordinal, wrapped to the shard
  // count, keeps concurrent recorders off each other's cache lines.
  static std::atomic<unsigned> next_thread{0};
  thread_local const unsigned thread_ord =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  const int shard = static_cast<int>(thread_ord %
                                     static_cast<unsigned>(opt_.shards));

  // Totals first, window cell last (release), and merge_window loads
  // cells with acquire: a snapshot reads the window before the totals,
  // so any record it sees in the window is already in the totals —
  // window_count can never transiently exceed total_count.
  total_[static_cast<std::size_t>(idx)].fetch_add(1,
                                                  std::memory_order_relaxed);
  total_count_.fetch_add(1, std::memory_order_relaxed);
  total_sum_.fetch_add(v, std::memory_order_relaxed);
  slice_sum_[static_cast<std::size_t>(slot)].fetch_add(
      v, std::memory_order_relaxed);
  cell(shard, slot, idx).fetch_add(1, std::memory_order_release);
}

std::uint64_t SlidingHistogram::merge_window(std::uint64_t* merged,
                                             double* sum) const {
  const std::uint64_t now = now_ns();
  const std::uint64_t e = now / slice_ns_;
  std::uint64_t count = 0;
  double s = 0.0;
  for (int b = 0; b < kBuckets; ++b) merged[b] = 0;
  for (int slot = 0; slot < opt_.slices; ++slot) {
    const std::uint64_t ep = slice_epoch_[static_cast<std::size_t>(slot)]
                                 .load(std::memory_order_relaxed);
    if (ep == ~std::uint64_t{0}) continue;  // never used
    if (ep > e || e - ep >= static_cast<std::uint64_t>(opt_.slices))
      continue;  // outside the window
    for (int sh = 0; sh < opt_.shards; ++sh)
      for (int b = 0; b < kBuckets; ++b) {
        const std::uint64_t c =
            cell(sh, slot, b).load(std::memory_order_acquire);
        merged[b] += c;
        count += c;
      }
    s += static_cast<double>(slice_sum_[static_cast<std::size_t>(slot)]
                                 .load(std::memory_order_relaxed));
  }
  if (sum) *sum = s;
  return count;
}

namespace {

double quantile_from(const std::uint64_t* buckets, std::uint64_t count,
                     double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th observation (1-based, ceil), then walk the CDF.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (int b = 0; b < SlidingHistogram::kBuckets; ++b) {
    cum += buckets[b];
    if (cum >= rank) return SlidingHistogram::bucket_mid(b);
  }
  return SlidingHistogram::bucket_mid(SlidingHistogram::kBuckets - 1);
}

}  // namespace

double SlidingHistogram::quantile(double q) const {
  std::vector<std::uint64_t> scratch(kBuckets);
  return quantile(q, scratch.data());
}

double SlidingHistogram::quantile(double q, std::uint64_t* scratch) const {
  std::uint64_t count = merge_window(scratch, nullptr);
  if (count == 0) {
    // Window drained: the all-time distribution stands in, reusing the
    // same scratch buffer.
    for (int b = 0; b < kBuckets; ++b) {
      scratch[b] =
          total_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
      count += scratch[b];
    }
  }
  return quantile_from(scratch, count, q);
}

SlidingHistogram::Snapshot SlidingHistogram::snapshot() const {
  std::vector<std::uint64_t> scratch(kBuckets);
  return snapshot(scratch.data());
}

SlidingHistogram::Snapshot SlidingHistogram::snapshot(
    std::uint64_t* scratch) const {
  Snapshot out;
  double wsum = 0.0;
  out.window_count = merge_window(scratch, &wsum);
  out.window_sum = wsum;
  out.total_count = total_count_.load(std::memory_order_relaxed);
  out.total_sum =
      static_cast<double>(total_sum_.load(std::memory_order_relaxed));

  std::uint64_t count = out.window_count;
  if (count == 0) {
    for (int b = 0; b < kBuckets; ++b) {
      scratch[b] =
          total_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
      count += scratch[b];
    }
  } else {
    out.from_window = true;
  }
  out.p50 = quantile_from(scratch, count, 0.50);
  out.p90 = quantile_from(scratch, count, 0.90);
  out.p99 = quantile_from(scratch, count, 0.99);
  out.p999 = quantile_from(scratch, count, 0.999);

  // Rate over the seconds the window actually covers: a fresh histogram
  // hasn't seen window_s seconds yet.
  const double elapsed_s =
      static_cast<double>(now_ns() - start_ns_) / 1e9;
  const double covered =
      std::max(std::min(opt_.window_s, elapsed_s), 1e-3);
  out.rate_per_s = static_cast<double>(out.window_count) / covered;
  return out;
}

void SlidingHistogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  for (auto& e : slice_epoch_) e.store(~std::uint64_t{0});
  for (auto& s : slice_sum_) s.store(0, std::memory_order_relaxed);
  for (auto& t : total_) t.store(0, std::memory_order_relaxed);
  total_count_.store(0, std::memory_order_relaxed);
  total_sum_.store(0, std::memory_order_relaxed);
  start_ns_ = now_ns();
}

}  // namespace ecomp::obs

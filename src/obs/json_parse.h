// Minimal JSON parser for reading ecomp's own machine-readable outputs
// back in (bench sidecars, metrics snapshots, energy ledgers). Objects
// preserve key insertion order so diffs and goldens stay stable.
//
// This is a strict parser for the subset our emitters produce (plus
// standard escapes); it throws ecomp::Error with an offset on anything
// malformed rather than guessing.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bytes.h"

namespace ecomp::obs {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Key/value pairs in document order.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// find() + number coercion; `fallback` when absent/not a number.
  double number_or(std::string_view key, double fallback) const;
};

/// Parse a complete JSON document (throws Error on malformed input or
/// trailing garbage).
JsonValue parse_json(std::string_view text);

}  // namespace ecomp::obs

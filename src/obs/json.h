// Tiny JSON emission helpers shared by the metrics and trace exporters.
// The matching parser (for reading bench sidecars back) lives in
// obs/json_parse.h.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace ecomp::obs {

/// Quote and escape a string for JSON output.
inline std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// Render a double as a valid JSON number (no inf/nan, no trailing cruft).
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Minimal streaming JSON object/array writer — the one emitter behind
/// `ecomp energy --json`, `ecomp stats --json`, and the STATS surface,
/// so their quoting/number formatting can never drift apart. Commas
/// are managed per nesting level; the caller supplies structure
/// (begin/end calls must balance).
class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  /// Key inside an object; follow with a value or begin_* call.
  JsonWriter& key(std::string_view k) {
    comma();
    out_ += json_quote(k);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) { return raw(json_quote(s)); }
  JsonWriter& value(const char* s) { return raw(json_quote(s)); }
  JsonWriter& value(double v) { return raw(json_number(v)); }
  JsonWriter& value(std::uint64_t v) { return raw(std::to_string(v)); }
  JsonWriter& value(std::int64_t v) { return raw(std::to_string(v)); }
  JsonWriter& value(int v) { return raw(std::to_string(v)); }
  JsonWriter& value(bool v) { return raw(v ? "true" : "false"); }
  /// Pre-rendered JSON (e.g. an EnergyLedger::to_json() document).
  JsonWriter& raw(std::string_view json) {
    comma();
    out_ += json;
    pending_value_ = false;
    return *this;
  }

  const std::string& str() const { return out_; }

 private:
  JsonWriter& open(char c) {
    comma();
    out_ += c;
    first_.push_back(true);
    pending_value_ = false;
    return *this;
  }
  JsonWriter& close(char c) {
    out_ += c;
    first_.pop_back();
    pending_value_ = false;
    return *this;
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;  // a key was just written; no comma before its value
    }
    if (!first_.empty()) {
      if (!first_.back()) out_ += ',';
      first_.back() = false;
    }
  }

  std::string out_;
  std::vector<bool> first_;
  bool pending_value_ = false;
};

}  // namespace ecomp::obs

// Tiny JSON emission helpers shared by the metrics and trace exporters.
// The matching parser (for reading bench sidecars back) lives in
// obs/json_parse.h.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace ecomp::obs {

/// Quote and escape a string for JSON output.
inline std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// Render a double as a valid JSON number (no inf/nan, no trailing cruft).
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace ecomp::obs

// obs rules — the watchdog's rule model, the text syntax behind
// `ecomp monitor --rules FILE`, and the evaluator that turns series
// samples into structured alerts.
//
// Rule kinds (docs/MONITORING.md has the full grammar):
//   slo   NAME SERIES above|below THRESHOLD [for N]
//         static threshold; fires after N consecutive breaching
//         samples, once per breach episode.
//   drift NAME SERIES [z Z] [warmup N] [alpha A]
//         statistical anomaly: an EWMA tracks the series mean and an
//         EWMA of absolute deviations stands in for the MAD; a sample
//         whose robust z-score exceeds Z (after warmup) is a breach.
//   stall NAME SERIES SECONDS [for N]
//         liveness: identical evaluation to an `above` SLO (the series
//         is expected to carry "seconds since progress"), kept distinct
//         so alert records say what kind of failure this is.
//
// THRESHOLD is a number, or a symbolic token (e.g. "eq6", "eq6@0.05",
// "eq6*1.15") handed to a caller-supplied resolver — obs links only
// ecomp_util, so the Eq. 6 energy line is resolved by the layer that
// owns the energy model (cli / net), not here.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/series.h"

namespace ecomp::obs {

enum class RuleKind { Slo, Drift, Stall };

const char* to_string(RuleKind k);

struct Rule {
  std::string name;         ///< rule id, stamped into alerts
  RuleKind kind = RuleKind::Slo;
  std::string series;       ///< series the rule watches
  double threshold = 0.0;   ///< Slo/Stall: breach line
  bool above = true;        ///< Slo: breach when value > threshold
  int for_n = 1;            ///< consecutive breaching samples to fire
  double z = 4.0;           ///< Drift: robust z-score to breach
  int warmup = 12;          ///< Drift: samples before eligible
  double alpha = 0.2;       ///< Drift: EWMA smoothing factor
};

/// One fired alert — what lands in the EventLog (stage "alert"), the
/// flight recorder, and the STATS ALERTS section.
struct Alert {
  std::string rule;
  std::string series;
  double t_s = 0.0;       ///< sample time that fired the rule
  double value = 0.0;     ///< offending sample value
  double threshold = 0.0; ///< resolved breach line (z bound for drift)
  std::string detail;     ///< human-readable one-liner
};

/// Resolve a symbolic threshold token to a number; throw ecomp::Error
/// for tokens it does not understand.
using ThresholdResolver = std::function<double(const std::string&)>;

/// Parse the rule-file grammar above. Lines that are empty or start
/// with '#' are skipped. Throws ecomp::Error (with a line number) on
/// syntax errors or unresolvable thresholds.
std::vector<Rule> parse_rules(const std::string& text,
                              const ThresholdResolver& resolve = {});

/// Evaluates rules against a SeriesStore. Each rule consumes tier-0
/// samples exactly once (tracked by the ring's monotonic push count),
/// so evaluate() may be called at any cadence without double-counting.
/// Fire-once-per-episode: a rule that fired stays silent until its
/// series stops breaching, then re-arms. Not internally synchronized
/// (obs::Monitor provides the lock).
class Watchdog {
 public:
  static constexpr std::size_t kRecentCap = 32;

  void add_rule(Rule r);
  const std::vector<Rule>& rules() const { return rules_; }

  /// Evaluate every rule against the store's new samples; appends fired
  /// alerts to `fired` (when non-null) and returns how many fired.
  std::size_t evaluate(const SeriesStore& store,
                       std::vector<Alert>* fired = nullptr);

  std::uint64_t alerts_total() const { return alerts_total_; }
  /// The last kRecentCap alerts, oldest first.
  const std::deque<Alert>& recent() const { return recent_; }

 private:
  struct State {
    std::uint64_t consumed = 0;  ///< tier-0 push ordinal processed up to
    int streak = 0;              ///< consecutive breaching samples
    bool in_episode = false;     ///< fired and not yet recovered
    double ewma = 0.0;           ///< drift: running mean
    double adev = 0.0;           ///< drift: EWMA of |v - ewma| (MAD proxy)
    std::uint64_t seen = 0;      ///< drift: samples folded in
  };

  void fire(const Rule& r, const Sample& s, double threshold,
            std::vector<Alert>* fired);

  std::vector<Rule> rules_;
  std::vector<State> states_;
  std::deque<Alert> recent_;
  std::uint64_t alerts_total_ = 0;
};

}  // namespace ecomp::obs

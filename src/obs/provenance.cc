#include "obs/provenance.h"

#include <unistd.h>

#include <cstdlib>
#include <ctime>

#include "obs/json.h"
#include "util/simd.h"

#ifndef ECOMP_GIT_SHA
#define ECOMP_GIT_SHA "unknown"
#endif
#ifndef ECOMP_BUILD_TYPE
#define ECOMP_BUILD_TYPE "unknown"
#endif

namespace ecomp::obs {

Provenance collect_provenance() {
  Provenance p;
  const char* env_sha = std::getenv("ECOMP_GIT_SHA");
  p.git_sha = (env_sha && *env_sha) ? env_sha : ECOMP_GIT_SHA;

  std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char ts[32];
  std::strftime(ts, sizeof ts, "%Y-%m-%dT%H:%M:%SZ", &utc);
  p.timestamp = ts;

  char host[256] = {0};
  if (gethostname(host, sizeof host - 1) == 0 && host[0]) p.hostname = host;
  else p.hostname = "unknown";

  p.build_type = ECOMP_BUILD_TYPE;
#if defined(ECOMP_OBS_ENABLED)
  p.obs_enabled = true;
#endif
  // Throughput (_mb_s) numbers are only comparable between runs that
  // dispatched the same kernels on comparable silicon; benchdiff reads
  // these two fields to decide whether to gate or just warn.
  p.simd_level = simd::level_name(simd::active_level());
  p.cpu_flags = simd::cpu_flags();
  return p;
}

std::string to_json(const Provenance& p) {
  std::string out = "{\"git_sha\":" + json_quote(p.git_sha) +
                    ",\"timestamp\":" + json_quote(p.timestamp) +
                    ",\"hostname\":" + json_quote(p.hostname) +
                    ",\"build_type\":" + json_quote(p.build_type) +
                    ",\"obs_enabled\":" +
                    (p.obs_enabled ? "true" : "false") +
                    ",\"simd_level\":" + json_quote(p.simd_level) +
                    ",\"cpu_flags\":" + json_quote(p.cpu_flags) + "}";
  return out;
}

}  // namespace ecomp::obs

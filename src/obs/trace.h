// obs::Tracer — span tracing over a dual timebase, exported as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing) or a flat
// text summary.
//
// Two tracks (Chrome "processes") keep the timebases apart:
//   * pid 1 "wall" — real wall-clock spans around actual codec/CLI work,
//     recorded via RAII obs::Span (or the ECOMP_TRACE_SPAN macro).
//   * pid 2 "sim"  — simulated seconds from sim::Timeline phases, mapped
//     1 s -> 1e6 trace-us so Perfetto renders them at natural scale.
//
// The tracer is disabled by default: Span construction is a single
// relaxed atomic load until enable() is called, and the ECOMP_TRACE_SPAN
// macro disappears entirely in ECOMP_OBS=OFF builds.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ecomp::obs {

inline constexpr int kWallPid = 1;  ///< wall-clock track
inline constexpr int kSimPid = 2;   ///< simulated-seconds track

/// Request-scoped identity carried across the wire: the client CLI
/// mints a trace_id, the proxy protocol carries it as a `trace=<hex>`
/// token on the request line and echoes it in replies, and both sides
/// stamp it into their span tracer output and JSONL event logs.
struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = no trace attached
  std::uint64_t span_id = 0;   ///< per-hop ordinal under the trace

  bool valid() const { return trace_id != 0; }
  /// Fresh nonzero 64-bit id (splitmix64 over an entropy-seeded
  /// counter — unique per process, collision-resistant across them).
  static TraceContext mint();
  /// 16 lowercase hex chars of trace_id.
  std::string hex() const;
  /// Parse hex() output; returns an invalid context on malformed input.
  static TraceContext from_hex(std::string_view hex);
};

/// The calling thread's current trace context (invalid when none).
/// Spans recorded while a TraceScope is live carry its trace_id.
TraceContext current_trace();

/// RAII: installs `ctx` as the thread's current trace context for the
/// enclosing scope (restores the previous one on destruction).
class TraceScope {
 public:
  explicit TraceScope(TraceContext ctx);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext prev_;
};

struct TraceEvent {
  std::string name;
  std::string cat;
  double ts_us = 0.0;   ///< start, microseconds in the track's timebase
  double dur_us = 0.0;  ///< duration; 0 renders as an instant
  int pid = kWallPid;
  int tid = 0;
  char ph = 'X';        ///< 'X' complete span, 'C' counter sample
  double value = 0.0;   ///< counter value when ph == 'C'
  std::uint64_t trace_id = 0;  ///< stamped into args when nonzero
};

class Tracer {
 public:
  static Tracer& global();

  void enable();
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void clear();

  /// Microseconds since enable() (or first use) on the wall track.
  double now_us() const;

  void add_complete(std::string_view name, std::string_view cat,
                    double ts_us, double dur_us, int pid = kWallPid);
  /// Simulated-timebase complete event, in seconds.
  void add_sim_complete(std::string_view name, std::string_view cat,
                        double start_s, double dur_s);

  /// Counter sample (Chrome "C" event) — renders as a step-function
  /// counter track named `name` on the given pid. Perfetto holds the
  /// value until the next sample, so emit one per change point.
  void add_counter(std::string_view name, std::string_view cat,
                   double ts_us, double value, int pid = kWallPid);
  /// Simulated-timebase counter sample, in seconds.
  void add_sim_counter(std::string_view name, std::string_view cat,
                       double t_s, double value);

  std::size_t event_count() const;

  /// Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":..}.
  std::string to_chrome_json() const;
  /// Per-(track, category, name) count/total-duration summary lines.
  std::string summary_text() const;

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII wall-clock span: records a complete event on destruction. Cheap
/// when the tracer is disabled (one relaxed load, no clock read). While
/// a profile is running (prof/zone.h), the span's name is also pushed as
/// a profiler zone — independent of tracer enablement — so every
/// ECOMP_TRACE_SPAN site doubles as a flamegraph frame.
class Span {
 public:
  Span(std::string_view name, std::string_view cat);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string_view name_;
  std::string_view cat_;
  double start_us_ = 0.0;
  bool active_ = false;
  bool zone_pushed_ = false;
};

}  // namespace ecomp::obs

#if defined(ECOMP_OBS_ENABLED)
#define ECOMP_OBS_CONCAT_(a, b) a##b
#define ECOMP_OBS_CONCAT(a, b) ECOMP_OBS_CONCAT_(a, b)
/// Scoped span over the rest of the enclosing block.
#define ECOMP_TRACE_SPAN(name, cat) \
  ::ecomp::obs::Span ECOMP_OBS_CONCAT(ecomp_obs_span_, __LINE__)(name, cat)
#else
#define ECOMP_TRACE_SPAN(name, cat) \
  do { (void)sizeof(name); (void)sizeof(cat); } while (0)
#endif

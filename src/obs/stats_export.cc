#include "obs/stats_export.h"

#include <cstdio>
#include <sstream>

#include "obs/json.h"

namespace ecomp::obs {
namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted instrument
/// names map dots (and anything else exotic) to underscores.
std::string prom_name(std::string_view name) {
  std::string out = "ecomp_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

StatsFormat parse_stats_format(const std::string& s) {
  if (s == "json") return StatsFormat::Json;
  if (s == "prom") return StatsFormat::Prometheus;
  return StatsFormat::Text;
}

std::string stats_to_json(const StatsSnapshot& s) {
  JsonWriter w;
  w.begin_object();
  w.key("uptime_s").value(s.uptime_s);
  w.key("connections_active").value(s.connections_active);
  w.key("connections_total").value(s.connections_total);
  w.key("requests_total").value(s.requests_total);
  w.key("errors_total").value(s.errors_total);
  w.key("faults_injected").value(s.faults_injected);
  w.key("bytes_sent").value(s.bytes_sent);
  w.key("bytes_recv").value(s.bytes_recv);
  w.key("energy_served_j").value(s.energy_served_j);
  w.key("counters").begin_object();
  for (const auto& [name, v] : s.counters) w.key(name).value(v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& h : s.histograms) {
    w.key(h.name).begin_object();
    w.key("count").value(h.snap.total_count);
    w.key("sum").value(h.snap.total_sum);
    w.key("window_count").value(h.snap.window_count);
    w.key("rate_per_s").value(h.snap.rate_per_s);
    w.key("from_window").value(h.snap.from_window);
    w.key("p50").value(h.snap.p50);
    w.key("p90").value(h.snap.p90);
    w.key("p99").value(h.snap.p99);
    w.key("p999").value(h.snap.p999);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string stats_to_text(const StatsSnapshot& s) {
  std::ostringstream os;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", s.uptime_s);
  os << "uptime_s            " << buf << "\n";
  os << "connections_active  " << s.connections_active << "\n";
  os << "connections_total   " << s.connections_total << "\n";
  os << "requests_total      " << s.requests_total << "\n";
  os << "errors_total        " << s.errors_total << "\n";
  os << "faults_injected     " << s.faults_injected << "\n";
  os << "bytes_sent          " << s.bytes_sent << "\n";
  os << "bytes_recv          " << s.bytes_recv << "\n";
  std::snprintf(buf, sizeof buf, "%.6f", s.energy_served_j);
  os << "energy_served_j     " << buf << "\n";
  for (const auto& [name, v] : s.counters)
    os << "counter " << name << " " << v << "\n";
  for (const auto& h : s.histograms) {
    os << "hist " << h.name << " count=" << h.snap.total_count
       << " rate_per_s=" << json_number(h.snap.rate_per_s)
       << " p50=" << json_number(h.snap.p50)
       << " p90=" << json_number(h.snap.p90)
       << " p99=" << json_number(h.snap.p99)
       << " p999=" << json_number(h.snap.p999)
       << (h.snap.from_window ? "" : " (all-time)") << "\n";
  }
  return os.str();
}

std::string stats_to_prometheus(const StatsSnapshot& s) {
  std::ostringstream os;
  const auto gauge = [&os](std::string_view name, std::string_view help,
                           const std::string& v) {
    const std::string n = prom_name(name);
    os << "# HELP " << n << " " << help << "\n";
    os << "# TYPE " << n << " gauge\n";
    os << n << " " << v << "\n";
  };
  gauge("uptime_seconds", "Proxy uptime.", json_number(s.uptime_s));
  gauge("connections_active", "Connections currently being served.",
        std::to_string(s.connections_active));
  gauge("connections_total", "Connections accepted since start.",
        std::to_string(s.connections_total));
  gauge("requests_total", "Requests parsed since start.",
        std::to_string(s.requests_total));
  gauge("errors_total", "Requests that ended in an error reply.",
        std::to_string(s.errors_total));
  gauge("faults_injected_total", "Injected wire faults hit.",
        std::to_string(s.faults_injected));
  gauge("bytes_sent_total", "Payload bytes sent on the wire.",
        std::to_string(s.bytes_sent));
  gauge("bytes_recv_total", "Payload bytes received on the wire.",
        std::to_string(s.bytes_recv));
  gauge("energy_served_joules", "Ledgered transfer energy served.",
        json_number(s.energy_served_j));
  for (const auto& [name, v] : s.counters)
    gauge(name, "Registry counter.", std::to_string(v));
  for (const auto& h : s.histograms) {
    const std::string n = prom_name(h.name);
    os << "# HELP " << n << " Sliding-window summary.\n";
    os << "# TYPE " << n << " summary\n";
    const std::pair<const char*, double> qs[] = {
        {"0.5", h.snap.p50}, {"0.9", h.snap.p90},
        {"0.99", h.snap.p99}, {"0.999", h.snap.p999}};
    for (const auto& [q, v] : qs)
      os << n << "{quantile=\"" << q << "\"} " << json_number(v) << "\n";
    os << n << "_count " << h.snap.total_count << "\n";
    os << n << "_sum " << json_number(h.snap.total_sum) << "\n";
  }
  return os.str();
}

std::string render_stats(const StatsSnapshot& s, StatsFormat format) {
  switch (format) {
    case StatsFormat::Json: return stats_to_json(s);
    case StatsFormat::Prometheus: return stats_to_prometheus(s);
    case StatsFormat::Text: break;
  }
  return stats_to_text(s);
}

}  // namespace ecomp::obs

#include "obs/stats_export.h"

#include <cstdio>
#include <set>
#include <sstream>

#include "obs/json.h"

namespace ecomp::obs {
namespace {

/// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; our
/// dotted instrument names map dots (and anything else exotic) to
/// underscores, and the fixed "ecomp_" prefix guarantees no metric can
/// start with a digit regardless of what the instrument was called.
std::string prom_name(std::string_view name) {
  std::string out = "ecomp_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Prometheus label values live inside double quotes; escape per the
/// exposition format (backslash, quote, newline).
std::string prom_label_value(std::string_view v) {
  std::string out;
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

StatsFormat parse_stats_format(const std::string& s) {
  if (s == "json") return StatsFormat::Json;
  if (s == "prom") return StatsFormat::Prometheus;
  return StatsFormat::Text;
}

std::string stats_to_json(const StatsSnapshot& s) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(s.schema);
  w.key("provenance").begin_object();
  w.key("git_sha").value(s.provenance.git_sha);
  w.key("build_type").value(s.provenance.build_type);
  w.key("hostname").value(s.provenance.hostname);
  w.key("obs_enabled").value(s.provenance.obs_enabled);
  w.end_object();
  w.key("uptime_s").value(s.uptime_s);
  w.key("connections_active").value(s.connections_active);
  w.key("connections_total").value(s.connections_total);
  w.key("requests_total").value(s.requests_total);
  w.key("errors_total").value(s.errors_total);
  w.key("faults_injected").value(s.faults_injected);
  w.key("bytes_sent").value(s.bytes_sent);
  w.key("bytes_recv").value(s.bytes_recv);
  w.key("energy_served_j").value(s.energy_served_j);
  w.key("counters").begin_object();
  for (const auto& [name, v] : s.counters) w.key(name).value(v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& h : s.histograms) {
    w.key(h.name).begin_object();
    w.key("count").value(h.snap.total_count);
    w.key("sum").value(h.snap.total_sum);
    w.key("window_count").value(h.snap.window_count);
    w.key("rate_per_s").value(h.snap.rate_per_s);
    w.key("from_window").value(h.snap.from_window);
    w.key("p50").value(h.snap.p50);
    w.key("p90").value(h.snap.p90);
    w.key("p99").value(h.snap.p99);
    w.key("p999").value(h.snap.p999);
    w.end_object();
  }
  w.end_object();
  if (s.prof.present) {
    w.key("prof").begin_object();
    w.key("rss_peak_kb").value(s.prof.rss_peak_kb);
    w.key("samples_lifetime").value(s.prof.samples_lifetime);
    w.key("sampler_active").value(s.prof.sampler_active);
    w.key("flight_recorded").value(s.prof.flight_recorded);
    w.key("alloc").begin_object();
    for (const auto& a : s.prof.alloc) {
      w.key(a.component).begin_object();
      w.key("bytes").value(a.bytes);
      w.key("allocs").value(a.allocs);
      w.key("peak").value(a.peak);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  if (s.admission.present) {
    w.key("admission").begin_object();
    w.key("workers").value(s.admission.workers);
    w.key("capacity").value(s.admission.capacity);
    w.key("depth").value(s.admission.depth);
    w.key("busy_total").value(s.admission.busy_total);
    w.key("degraded_level_total").value(s.admission.degraded_level_total);
    w.key("degraded_raw_total").value(s.admission.degraded_raw_total);
    w.end_object();
  }
  if (s.cache.present) {
    w.key("cache").begin_object();
    w.key("hits").value(s.cache.hits);
    w.key("misses").value(s.cache.misses);
    w.key("waits").value(s.cache.waits);
    w.key("builds").value(s.cache.builds);
    w.key("evictions").value(s.cache.evictions);
    w.key("bytes").value(s.cache.bytes);
    w.key("entries").value(s.cache.entries);
    w.end_object();
  }
  if (s.monitor.present) {
    w.key("monitor").begin_object();
    w.key("ticks").value(s.monitor.ticks);
    w.key("alerts_total").value(s.monitor.alerts_total);
    w.key("gauges").begin_object();
    for (const auto& [name, v] : s.monitor.gauges) w.key(name).value(v);
    w.end_object();
    w.key("alerts").begin_array();
    for (const auto& a : s.monitor.alerts) {
      w.begin_object();
      w.key("rule").value(a.rule);
      w.key("series").value(a.series);
      w.key("t_s").value(a.t_s);
      w.key("value").value(a.value);
      w.key("threshold").value(a.threshold);
      w.key("detail").value(a.detail);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  return w.str();
}

std::string stats_to_text(const StatsSnapshot& s) {
  std::ostringstream os;
  char buf[64];
  os << "schema              " << s.schema << "\n";
  os << "build               " << s.provenance.git_sha << " ("
     << s.provenance.build_type
     << (s.provenance.obs_enabled ? ", obs" : ", no-obs") << ")\n";
  std::snprintf(buf, sizeof buf, "%.1f", s.uptime_s);
  os << "uptime_s            " << buf << "\n";
  os << "connections_active  " << s.connections_active << "\n";
  os << "connections_total   " << s.connections_total << "\n";
  os << "requests_total      " << s.requests_total << "\n";
  os << "errors_total        " << s.errors_total << "\n";
  os << "faults_injected     " << s.faults_injected << "\n";
  os << "bytes_sent          " << s.bytes_sent << "\n";
  os << "bytes_recv          " << s.bytes_recv << "\n";
  std::snprintf(buf, sizeof buf, "%.6f", s.energy_served_j);
  os << "energy_served_j     " << buf << "\n";
  for (const auto& [name, v] : s.counters)
    os << "counter " << name << " " << v << "\n";
  for (const auto& h : s.histograms) {
    os << "hist " << h.name << " count=" << h.snap.total_count
       << " rate_per_s=" << json_number(h.snap.rate_per_s)
       << " p50=" << json_number(h.snap.p50)
       << " p90=" << json_number(h.snap.p90)
       << " p99=" << json_number(h.snap.p99)
       << " p999=" << json_number(h.snap.p999)
       << (h.snap.from_window ? "" : " (all-time)") << "\n";
  }
  if (s.prof.present) {
    os << "prof rss_peak_kb " << s.prof.rss_peak_kb << "\n";
    os << "prof sampler " << (s.prof.sampler_active ? "active" : "idle")
       << " samples=" << s.prof.samples_lifetime << "\n";
    os << "prof flight_recorded " << s.prof.flight_recorded << "\n";
    for (const auto& a : s.prof.alloc)
      os << "prof alloc " << a.component << " bytes=" << a.bytes
         << " allocs=" << a.allocs << " peak=" << a.peak << "\n";
  }
  if (s.admission.present) {
    os << "admission workers=" << s.admission.workers
       << " capacity=" << s.admission.capacity
       << " depth=" << s.admission.depth << "\n";
    os << "admission busy_total " << s.admission.busy_total << "\n";
    os << "admission degraded_level_total "
       << s.admission.degraded_level_total << "\n";
    os << "admission degraded_raw_total " << s.admission.degraded_raw_total
       << "\n";
  }
  if (s.cache.present) {
    os << "cache hits=" << s.cache.hits << " misses=" << s.cache.misses
       << " waits=" << s.cache.waits << " builds=" << s.cache.builds
       << " evictions=" << s.cache.evictions << "\n";
    os << "cache bytes=" << s.cache.bytes << " entries=" << s.cache.entries
       << "\n";
  }
  if (s.monitor.present) {
    os << "monitor ticks " << s.monitor.ticks << " alerts_total "
       << s.monitor.alerts_total << "\n";
    for (const auto& [name, v] : s.monitor.gauges)
      os << "monitor " << name << " " << json_number(v) << "\n";
    os << "ALERTS " << s.monitor.alerts.size() << "\n";
    for (const auto& a : s.monitor.alerts)
      os << "alert " << a.rule << " " << a.detail << "\n";
  }
  return os.str();
}

std::string stats_to_prometheus(const StatsSnapshot& s) {
  std::ostringstream os;
  // Exposition-format validity (what `promtool check metrics` enforces):
  // each metric family appears exactly once with one # HELP and one
  // # TYPE line before its samples, monotonic values are typed counter,
  // and sanitized names can never collide into a duplicate family — the
  // `seen` set drops any later claimant to an already-emitted name.
  std::set<std::string> seen;
  const auto begin_family = [&](const std::string& n, std::string_view help,
                                const char* type) {
    if (!seen.insert(n).second) return false;
    os << "# HELP " << n << " " << help << "\n";
    os << "# TYPE " << n << " " << type << "\n";
    return true;
  };
  const auto scalar = [&](std::string_view name, std::string_view help,
                          const char* type, const std::string& v) {
    const std::string n = prom_name(name);
    if (!begin_family(n, help, type)) return;
    os << n << " " << v << "\n";
  };
  const auto gauge = [&](std::string_view name, std::string_view help,
                         const std::string& v) {
    scalar(name, help, "gauge", v);
  };
  const auto counter = [&](std::string_view name, std::string_view help,
                           const std::string& v) {
    scalar(name, help, "counter", v);
  };
  {
    // Build identity as a constant-1 info gauge, the node_exporter idiom.
    const std::string n = prom_name("build_info");
    if (begin_family(n, "Build provenance (constant 1).", "gauge"))
      os << n << "{git_sha=\"" << prom_label_value(s.provenance.git_sha)
         << "\",build_type=\"" << prom_label_value(s.provenance.build_type)
         << "\"} 1\n";
  }
  gauge("stats_schema", "STATS payload schema version.",
        std::to_string(s.schema));
  gauge("uptime_seconds", "Proxy uptime.", json_number(s.uptime_s));
  gauge("connections_active", "Connections currently being served.",
        std::to_string(s.connections_active));
  counter("connections_total", "Connections accepted since start.",
          std::to_string(s.connections_total));
  counter("requests_total", "Requests parsed since start.",
          std::to_string(s.requests_total));
  counter("errors_total", "Requests that ended in an error reply.",
          std::to_string(s.errors_total));
  counter("faults_injected_total", "Injected wire faults hit.",
          std::to_string(s.faults_injected));
  counter("bytes_sent_total", "Payload bytes sent on the wire.",
          std::to_string(s.bytes_sent));
  counter("bytes_recv_total", "Payload bytes received on the wire.",
          std::to_string(s.bytes_recv));
  gauge("energy_served_joules", "Ledgered transfer energy served.",
        json_number(s.energy_served_j));
  if (s.prof.present) {
    gauge("prof_rss_peak_kb", "Peak resident set size (VmHWM).",
          std::to_string(s.prof.rss_peak_kb));
    counter("prof_samples_total", "Profiler stacks captured since start.",
            std::to_string(s.prof.samples_lifetime));
    gauge("prof_sampler_active", "1 while ITIMER_PROF is armed.",
          s.prof.sampler_active ? "1" : "0");
    counter("prof_flight_recorded_total",
            "Events seen by the flight recorder.",
            std::to_string(s.prof.flight_recorded));
    const auto alloc_family =
        [&](std::string_view name, std::string_view help, const char* type,
            std::uint64_t ProfAllocStat::*field) {
          if (s.prof.alloc.empty()) return;
          const std::string n = prom_name(name);
          if (!begin_family(n, help, type)) return;
          for (const auto& a : s.prof.alloc)
            os << n << "{component=\"" << prom_label_value(a.component)
               << "\"} " << a.*field << "\n";
        };
    alloc_family("prof_alloc_bytes_total",
                 "Bytes booked per component arena.", "counter",
                 &ProfAllocStat::bytes);
    alloc_family("prof_alloc_allocs_total",
                 "Arena bookings per component.", "counter",
                 &ProfAllocStat::allocs);
    alloc_family("prof_alloc_peak_bytes",
                 "Peak live arena bytes per component.", "gauge",
                 &ProfAllocStat::peak);
  }
  if (s.admission.present) {
    gauge("admission_workers", "Proxy worker-pool size.",
          std::to_string(s.admission.workers));
    gauge("admission_capacity", "Max concurrent admitted connections.",
          std::to_string(s.admission.capacity));
    gauge("admission_depth", "Connections admitted right now.",
          std::to_string(s.admission.depth));
    counter("admission_busy_total", "Connections shed with BUSY.",
            std::to_string(s.admission.busy_total));
    counter("admission_degraded_level_total",
            "Responses served at a reduced compression level.",
            std::to_string(s.admission.degraded_level_total));
    counter("admission_degraded_raw_total",
            "Responses served with compression skipped.",
            std::to_string(s.admission.degraded_raw_total));
  }
  if (s.cache.present) {
    counter("cache_hits_total", "Container cache hits.",
            std::to_string(s.cache.hits));
    counter("cache_misses_total", "Container cache misses (became builder).",
            std::to_string(s.cache.misses));
    counter("cache_waits_total", "Lookups that joined an in-flight build.",
            std::to_string(s.cache.waits));
    counter("cache_builds_total", "Builds published into the cache.",
            std::to_string(s.cache.builds));
    counter("cache_evictions_total", "Entries evicted by capacity.",
            std::to_string(s.cache.evictions));
    gauge("cache_bytes", "Resident cached payload bytes.",
          std::to_string(s.cache.bytes));
    gauge("cache_entries", "Resident cache entry count.",
          std::to_string(s.cache.entries));
  }
  if (s.monitor.present) {
    counter("monitor_ticks_total", "Monitor sampler cycles completed.",
            std::to_string(s.monitor.ticks));
    counter("alerts_total", "Watchdog alerts fired since start.",
            std::to_string(s.monitor.alerts_total));
    if (!s.monitor.gauges.empty()) {
      const std::string n = prom_name("monitor");
      if (begin_family(n, "Newest sample of each monitored series.",
                       "gauge"))
        for (const auto& [name, v] : s.monitor.gauges)
          os << n << "{series=\"" << prom_label_value(name) << "\"} "
             << json_number(v) << "\n";
    }
  }
  for (const auto& [name, v] : s.counters)
    counter(name, "Registry counter.", std::to_string(v));
  for (const auto& h : s.histograms) {
    const std::string n = prom_name(h.name);
    // A summary family owns three sample names; claim them all so no
    // later scalar can collide into the family.
    if (!seen.insert(n).second) continue;
    seen.insert(n + "_count");
    seen.insert(n + "_sum");
    os << "# HELP " << n << " Sliding-window summary.\n";
    os << "# TYPE " << n << " summary\n";
    const std::pair<const char*, double> qs[] = {
        {"0.5", h.snap.p50}, {"0.9", h.snap.p90},
        {"0.99", h.snap.p99}, {"0.999", h.snap.p999}};
    for (const auto& [q, v] : qs)
      os << n << "{quantile=\"" << q << "\"} " << json_number(v) << "\n";
    os << n << "_count " << h.snap.total_count << "\n";
    os << n << "_sum " << json_number(h.snap.total_sum) << "\n";
  }
  return os.str();
}

std::string render_stats(const StatsSnapshot& s, StatsFormat format) {
  switch (format) {
    case StatsFormat::Json: return stats_to_json(s);
    case StatsFormat::Prometheus: return stats_to_prometheus(s);
    case StatsFormat::Text: break;
  }
  return stats_to_text(s);
}

}  // namespace ecomp::obs

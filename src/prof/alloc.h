// prof allocation accounting — bytes / alloc-count / peak per component.
//
// Components register a named AllocSite (cached through a function-local
// static, same idiom as the obs macros) and record arena growth at the
// points where scratch actually gets (re)allocated: lz77's match-chain
// arenas, bwt's rank buffer, selective's block scratch, the proxy's
// receive buffers. Recording is a handful of relaxed atomics at arena-
// resize granularity, so it stays on even when no profile is running —
// `prof.alloc.*` gauges and the STATS PROF section read it live.
//
// The thread-local AllocScope shim covers helpers that allocate on
// behalf of whoever called them: the scope names the component, and
// account_scoped() inside the helper books against it.
//
// Header-only (like zone.h) so the codecs need no link edge to
// ecomp_prof; publishing into the obs Registry lives in alloc.cc.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ecomp::prof {

inline constexpr int kMaxAllocSites = 64;

struct AllocSite {
  std::atomic<std::uint64_t> bytes{0};    ///< total bytes ever booked
  std::atomic<std::uint64_t> allocs{0};   ///< booking events
  std::atomic<std::uint64_t> current{0};  ///< live bytes (booked - released)
  std::atomic<std::uint64_t> peak{0};     ///< high-water mark of `current`
  const char* name = nullptr;             ///< set once under the lock
};

struct AllocRegistry {
  std::mutex mu;
  AllocSite sites[kMaxAllocSites];
  std::atomic<int> used{0};
};

inline AllocRegistry g_alloc;

/// Find-or-register the site for `name` (a literal). The last slot is a
/// shared "(overflow)" bucket so the table can never grow unbounded.
inline AllocSite& alloc_site(const char* name) {
  const int used = g_alloc.used.load(std::memory_order_acquire);
  for (int i = 0; i < used; ++i)
    if (std::strcmp(g_alloc.sites[i].name, name) == 0)
      return g_alloc.sites[i];
  std::lock_guard lock(g_alloc.mu);
  const int now = g_alloc.used.load(std::memory_order_relaxed);
  for (int i = used; i < now; ++i)
    if (std::strcmp(g_alloc.sites[i].name, name) == 0)
      return g_alloc.sites[i];
  if (now >= kMaxAllocSites - 1) {
    AllocSite& overflow = g_alloc.sites[kMaxAllocSites - 1];
    if (!overflow.name) {
      overflow.name = "(overflow)";
      g_alloc.used.store(kMaxAllocSites, std::memory_order_release);
    }
    return overflow;
  }
  g_alloc.sites[now].name = name;
  g_alloc.used.store(now + 1, std::memory_order_release);
  return g_alloc.sites[now];
}

inline void alloc_record(AllocSite& s, std::uint64_t n) {
  s.bytes.fetch_add(n, std::memory_order_relaxed);
  s.allocs.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t cur =
      s.current.fetch_add(n, std::memory_order_relaxed) + n;
  std::uint64_t p = s.peak.load(std::memory_order_relaxed);
  while (cur > p &&
         !s.peak.compare_exchange_weak(p, cur, std::memory_order_relaxed)) {
  }
}

inline void alloc_release(AllocSite& s, std::uint64_t n) {
  s.current.fetch_sub(n, std::memory_order_relaxed);
}

inline thread_local AllocSite* t_alloc_site = nullptr;

/// Names the component that shared helpers below this scope should book
/// allocations against (via account_scoped()).
class AllocScope {
 public:
  explicit AllocScope(const char* component)
      : prev_(t_alloc_site) {
    t_alloc_site = &alloc_site(component);
  }
  ~AllocScope() { t_alloc_site = prev_; }
  AllocScope(const AllocScope&) = delete;
  AllocScope& operator=(const AllocScope&) = delete;

 private:
  AllocSite* prev_;
};

/// Book `n` bytes against the innermost AllocScope (no-op outside one).
inline void account_scoped(std::uint64_t n) {
  if (t_alloc_site) alloc_record(*t_alloc_site, n);
}

struct AllocRow {
  std::string component;
  std::uint64_t bytes = 0;
  std::uint64_t allocs = 0;
  std::uint64_t current = 0;
  std::uint64_t peak = 0;
};

/// Point-in-time table of every registered site, sorted by component.
std::vector<AllocRow> alloc_snapshot();

/// Peak resident set (VmHWM from /proc/self/status), or -1 off-Linux.
std::int64_t rss_peak_kb();

/// Mirror the table into obs gauges: prof.alloc.<c>.{bytes,allocs,peak}
/// plus prof.rss_peak_kb, so --metrics dumps carry the PROF surface too.
void publish_alloc_metrics();

}  // namespace ecomp::prof

#if defined(ECOMP_OBS_ENABLED)
/// Book an arena (re)allocation of `nbytes` against `component`.
#define ECOMP_PROF_ALLOC(component, nbytes)                         \
  do {                                                              \
    static ::ecomp::prof::AllocSite& ecomp_prof_site_ =             \
        ::ecomp::prof::alloc_site(component);                       \
    ::ecomp::prof::alloc_record(                                    \
        ecomp_prof_site_, static_cast<std::uint64_t>(nbytes));      \
  } while (0)
/// Release `nbytes` previously booked against `component`.
#define ECOMP_PROF_RELEASE(component, nbytes)                       \
  do {                                                              \
    static ::ecomp::prof::AllocSite& ecomp_prof_site_ =             \
        ::ecomp::prof::alloc_site(component);                       \
    ::ecomp::prof::alloc_release(                                   \
        ecomp_prof_site_, static_cast<std::uint64_t>(nbytes));      \
  } while (0)
#else
#define ECOMP_PROF_ALLOC(component, nbytes) \
  do { (void)sizeof(component); (void)sizeof(nbytes); } while (0)
#define ECOMP_PROF_RELEASE(component, nbytes) \
  do { (void)sizeof(component); (void)sizeof(nbytes); } while (0)
#endif

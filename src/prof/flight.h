// prof::FlightRecorder — fixed-size lock-free ring of recent events,
// dumpable from a fatal-signal handler.
//
// Every obs::EventLog emission is mirrored in here (whether or not a
// JSONL file is open), so when a process dies on SIGSEGV/SIGABRT the
// crash handler can ship the last kCapacity lifecycle events — trace
// ids included — as a post-mortem JSONL artifact instead of a bare exit
// code. note() is a handful of relaxed atomic stores (strings packed
// into word-sized atomics, so ThreadSanitizer sees no bytewise races and
// a torn record can only ever misprint, never fault); dump() uses only
// async-signal-safe primitives (write/fsync + hand-rolled formatting).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace ecomp::obs {
struct Event;
}

namespace ecomp::prof {

class FlightRecorder {
 public:
  static constexpr std::uint32_t kCapacity = 256;  ///< records kept
  static constexpr int kStageWords = 2;   ///< 16 bytes of stage name
  static constexpr int kDetailWords = 8;  ///< 64 bytes of detail text

  static FlightRecorder& global();

  /// Record an event. Safe from any thread; never blocks, never
  /// allocates. Longer strings are truncated to the packed capacity.
  void note(std::string_view stage, std::string_view detail,
            std::uint64_t trace_id = 0, std::int64_t a = -1,
            std::int64_t b = -1);
  /// Convenience: record an EventLog event (stage + "name=.. mode=.."
  /// detail, bytes_wire as `a`, attempt as `b`).
  void note_event(const obs::Event& e);

  /// Total records ever noted (ring may hold only the last kCapacity).
  std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// Append the ring, oldest first, as JSONL to `fd`. Async-signal-safe.
  /// Returns the number of records written.
  int dump(int fd) const;
  /// open(path) + dump + fsync + close, all async-signal-safe.
  bool dump_to_file(const char* path) const;
  /// Normal-context convenience for tests: dump into a string.
  std::string dump_string() const;

  void clear();

 private:
  struct Rec {
    std::atomic<std::uint64_t> seq{0};  ///< 0 empty, else ordinal + 1
    std::atomic<std::uint64_t> trace{0};
    std::atomic<std::int64_t> a{-1};
    std::atomic<std::int64_t> b{-1};
    std::atomic<std::uint64_t> stage[kStageWords];
    std::atomic<std::uint64_t> detail[kDetailWords];
  };

  Rec recs_[kCapacity];
  std::atomic<std::uint64_t> next_{0};
};

/// Route every obs::EventLog emission into the global recorder (installed
/// by the crash handler, the profiler CLI paths, and the proxy).
void attach_flight_mirror();

}  // namespace ecomp::prof

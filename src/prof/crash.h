// prof crash handler — ships a post-mortem artifact on fatal signals.
//
// install_crash_handler(path) hooks SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT
// with an async-signal-safe handler that writes a one-line JSON header
// ({"fatal":true,"signal":N,...}) followed by the flight recorder's last
// events to `path`, fsyncs every open obs::EventLog fd (so JSONL logs
// never lose their tail either), then restores the default disposition
// and re-raises — the process still dies with the original signal, it
// just leaves evidence behind. The CLI wires this to --crash-dump /
// ECOMP_CRASH_DUMP.
//
// fatal_dump() writes the same artifact from normal context for fatal
// errors that are not signals (uncaught exceptions on CLI paths).
#pragma once

#include <string>

namespace ecomp::prof {

/// Install (or re-point) the fatal-signal dump handler. Also attaches
/// the EventLog->flight-recorder mirror so there is something to dump.
void install_crash_handler(const std::string& path);

bool crash_handler_installed();

/// Dump path configured by install_crash_handler (empty when none).
std::string crash_dump_path();

/// Write the post-mortem artifact now (header line carries `reason`
/// instead of a signal number). Returns false when no handler was
/// installed or the file cannot be written.
bool fatal_dump(const char* reason);

}  // namespace ecomp::prof

#include "prof/crash.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "obs/events.h"
#include "prof/flight.h"

namespace ecomp::prof {
namespace {

char g_path[512];
std::atomic<bool> g_installed{false};
std::atomic<bool> g_dumping{false};

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};

const char* sig_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGABRT: return "SIGABRT";
    default: return "SIG?";
  }
}

int fmt_u32(char* out, unsigned v) {
  char tmp[12];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v);
  for (int i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
  return n;
}

bool write_all(int fd, const char* buf, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, buf + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// Header line: {"fatal":true,"signal":N,"name":"..."} or, for
/// non-signal deaths, {"fatal":true,"reason":"..."}. Signal-safe.
void write_header(int fd, int sig, const char* reason) {
  char line[256];
  int n = 0;
  std::memcpy(line + n, "{\"fatal\":true", 13);
  n += 13;
  if (sig > 0) {
    std::memcpy(line + n, ",\"signal\":", 10);
    n += 10;
    n += fmt_u32(line + n, static_cast<unsigned>(sig));
    std::memcpy(line + n, ",\"name\":\"", 9);
    n += 9;
    const char* name = sig_name(sig);
    const std::size_t len = std::strlen(name);
    std::memcpy(line + n, name, len);
    n += static_cast<int>(len);
    line[n++] = '"';
  } else if (reason) {
    std::memcpy(line + n, ",\"reason\":\"", 11);
    n += 11;
    for (const char* p = reason;
         *p && n < static_cast<int>(sizeof line) - 4; ++p) {
      const unsigned char c = static_cast<unsigned char>(*p);
      line[n++] =
          (c < 0x20 || c == '"' || c == '\\' || c >= 0x7f) ? '_' : *p;
    }
    line[n++] = '"';
  }
  line[n++] = '}';
  line[n++] = '\n';
  write_all(fd, line, static_cast<std::size_t>(n));
}

/// The dump body shared by the signal handler and fatal_dump(): header,
/// flight ring, durability for the dump and every open event log.
bool dump_artifact(int sig, const char* reason) {
  const int fd =
      ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  write_header(fd, sig, reason);
  FlightRecorder::global().dump(fd);
  ::fsync(fd);
  ::close(fd);
  int fds[obs::kMaxEventLogFds];
  const int n = obs::event_log_fds(fds, obs::kMaxEventLogFds);
  for (int i = 0; i < n; ++i) ::fsync(fds[i]);
  return true;
}

void fatal_handler(int sig, siginfo_t*, void*) {
  // One dump per process death: a cascading fault inside the handler
  // (or a second thread crashing concurrently) falls straight through
  // to the re-raise.
  if (!g_dumping.exchange(true)) dump_artifact(sig, nullptr);
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void install_crash_handler(const std::string& path) {
  std::strncpy(g_path, path.c_str(), sizeof g_path - 1);
  g_path[sizeof g_path - 1] = '\0';
  attach_flight_mirror();
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_sigaction = fatal_handler;
  sa.sa_flags = SA_SIGINFO;
  sigemptyset(&sa.sa_mask);
  for (const int sig : kFatalSignals) sigaction(sig, &sa, nullptr);
  g_installed.store(true, std::memory_order_release);
}

bool crash_handler_installed() {
  return g_installed.load(std::memory_order_acquire);
}

std::string crash_dump_path() {
  return crash_handler_installed() ? std::string(g_path) : std::string();
}

bool fatal_dump(const char* reason) {
  if (!crash_handler_installed()) return false;
  return dump_artifact(0, reason ? reason : "fatal error");
}

}  // namespace ecomp::prof

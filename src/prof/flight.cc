#include "prof/flight.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/events.h"

namespace ecomp::prof {
namespace {

/// Pack up to 8*n bytes of `s` into word atomics (relaxed stores; the
/// matching loads reassemble — a torn read across words misprints one
/// record, which dump() tolerates by design).
void store_packed(std::atomic<std::uint64_t>* dst, int words,
                  std::string_view s) {
  for (int w = 0; w < words; ++w) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      const std::size_t idx = static_cast<std::size_t>(w) * 8 +
                              static_cast<std::size_t>(i);
      if (idx >= s.size()) break;
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(s[idx]))
           << (8 * i);
    }
    dst[w].store(v, std::memory_order_relaxed);
  }
}

int load_packed(const std::atomic<std::uint64_t>* src, int words,
                char* out) {
  int n = 0;
  for (int w = 0; w < words; ++w) {
    const std::uint64_t v = src[w].load(std::memory_order_relaxed);
    for (int i = 0; i < 8; ++i) {
      const char c = static_cast<char>((v >> (8 * i)) & 0xff);
      if (c == '\0') return n;
      out[n++] = c;
    }
  }
  return n;
}

// ---- async-signal-safe formatting helpers -------------------------------

int fmt_u64(char* out, std::uint64_t v) {
  char tmp[24];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v);
  for (int i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
  return n;
}

int fmt_i64(char* out, std::int64_t v) {
  if (v < 0) {
    out[0] = '-';
    return 1 + fmt_u64(out + 1, static_cast<std::uint64_t>(-(v + 1)) + 1);
  }
  return fmt_u64(out, static_cast<std::uint64_t>(v));
}

int fmt_hex16(char* out, std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  for (int i = 0; i < 16; ++i) out[i] = digits[(v >> (60 - 4 * i)) & 0xf];
  return 16;
}

/// Copy `s` into `out` with anything that could break a JSON string
/// (quotes, backslashes, control bytes) flattened to '_' — a crash dump
/// needs to parse, not round-trip.
int fmt_json_safe(char* out, const char* s, int len) {
  int n = 0;
  for (int i = 0; i < len; ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    out[n++] = (c < 0x20 || c == '"' || c == '\\' || c >= 0x7f) ? '_'
                                                                : s[i];
  }
  return n;
}

bool write_all(int fd, const char* buf, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, buf + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder r;
  return r;
}

void FlightRecorder::note(std::string_view stage, std::string_view detail,
                          std::uint64_t trace_id, std::int64_t a,
                          std::int64_t b) {
  const std::uint64_t ord =
      next_.fetch_add(1, std::memory_order_acq_rel);
  Rec& r = recs_[ord % kCapacity];
  r.seq.store(0, std::memory_order_release);  // mark in-progress
  r.trace.store(trace_id, std::memory_order_relaxed);
  r.a.store(a, std::memory_order_relaxed);
  r.b.store(b, std::memory_order_relaxed);
  store_packed(r.stage, kStageWords, stage);
  store_packed(r.detail, kDetailWords, detail);
  r.seq.store(ord + 1, std::memory_order_release);
}

void FlightRecorder::note_event(const obs::Event& e) {
  char detail[kDetailWords * 8];
  int n = 0;
  const auto append = [&](std::string_view s) {
    for (const char c : s) {
      if (n >= static_cast<int>(sizeof detail) - 1) return;
      detail[n++] = c;
    }
  };
  if (!e.name.empty()) {
    append("name=");
    append(e.name);
  }
  if (!e.mode.empty()) {
    append(n ? " mode=" : "mode=");
    append(e.mode);
  }
  if (!e.err.empty()) {
    append(n ? " err=" : "err=");
    append(e.err);
  }
  note(e.stage, std::string_view(detail, static_cast<std::size_t>(n)),
       e.trace_id, e.bytes_wire, e.attempt);
}

int FlightRecorder::dump(int fd) const {
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t start = end > kCapacity ? end - kCapacity : 0;
  int written = 0;
  // Room for the fixed JSON skeleton + packed strings + three numbers.
  char line[kStageWords * 8 + kDetailWords * 8 + 160];
  char stage[kStageWords * 8];
  char detail[kDetailWords * 8];
  for (std::uint64_t ord = start; ord < end; ++ord) {
    const Rec& r = recs_[ord % kCapacity];
    if (r.seq.load(std::memory_order_acquire) != ord + 1)
      continue;  // empty, torn, or already overwritten by a newer note
    const int stage_n = load_packed(r.stage, kStageWords, stage);
    const int detail_n = load_packed(r.detail, kDetailWords, detail);
    int n = 0;
    std::memcpy(line + n, "{\"seq\":", 7);
    n += 7;
    n += fmt_u64(line + n, ord);
    std::memcpy(line + n, ",\"stage\":\"", 10);
    n += 10;
    n += fmt_json_safe(line + n, stage, stage_n);
    line[n++] = '"';
    const std::uint64_t trace = r.trace.load(std::memory_order_relaxed);
    if (trace) {
      std::memcpy(line + n, ",\"trace\":\"", 10);
      n += 10;
      n += fmt_hex16(line + n, trace);
      line[n++] = '"';
    }
    if (detail_n) {
      std::memcpy(line + n, ",\"detail\":\"", 11);
      n += 11;
      n += fmt_json_safe(line + n, detail, detail_n);
      line[n++] = '"';
    }
    const std::int64_t a = r.a.load(std::memory_order_relaxed);
    if (a >= 0) {
      std::memcpy(line + n, ",\"bytes_wire\":", 14);
      n += 14;
      n += fmt_i64(line + n, a);
    }
    const std::int64_t b = r.b.load(std::memory_order_relaxed);
    if (b >= 0) {
      std::memcpy(line + n, ",\"attempt\":", 11);
      n += 11;
      n += fmt_i64(line + n, b);
    }
    line[n++] = '}';
    line[n++] = '\n';
    if (!write_all(fd, line, static_cast<std::size_t>(n))) break;
    ++written;
  }
  return written;
}

bool FlightRecorder::dump_to_file(const char* path) const {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return false;
  dump(fd);
  ::fsync(fd);
  ::close(fd);
  return true;
}

std::string FlightRecorder::dump_string() const {
  char path[] = "/tmp/ecomp_flight_XXXXXX";
  const int fd = ::mkstemp(path);
  if (fd < 0) return {};
  dump(fd);
  std::string out;
  ::lseek(fd, 0, SEEK_SET);
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0)
    out.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  ::unlink(path);
  return out;
}

void FlightRecorder::clear() {
  next_.store(0, std::memory_order_relaxed);
  for (Rec& r : recs_) r.seq.store(0, std::memory_order_relaxed);
}

namespace {
void flight_mirror(const obs::Event& e) {
  FlightRecorder::global().note_event(e);
}
}  // namespace

void attach_flight_mirror() {
  obs::set_event_mirror(&flight_mirror);
}

}  // namespace ecomp::prof

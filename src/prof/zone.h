// prof zones — the semantic call-stack the sampling profiler unwinds.
//
// A zone is a labelled scope ("lz77.match", "huffman.decode", ...) pushed
// onto a per-thread stack by RAII. obs::Span pushes its name as a zone, so
// every existing ECOMP_TRACE_SPAN site is already a profiler frame; the
// hot codec stages add finer-grained ECOMP_PROF_ZONE markers at block
// granularity (never per byte/symbol — the push/pop pair must stay
// invisible next to the work it brackets).
//
// Two consumers read the stack:
//   * the SIGPROF handler (sampling mode) copies the current stack of the
//     interrupted thread into that thread's lock-free SPSC ring;
//   * push/pop themselves (timing mode) attribute the nanoseconds since
//     the last zone switch to the zone that just ran, giving an *exact*
//     self-time table with no sampling noise — this is what the gated
//     bench `self_time_pct` keys are built from.
//
// This header is self-contained (inline/thread_local only, no prof
// library dependency) so obs and the codecs can include it without a
// link edge back to ecomp_prof — the library only adds the sampler,
// collector, and reporting on top. Everything the signal handler touches
// is an atomic or owned by the interrupted thread itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <ctime>
#include <mutex>
#include <string_view>
#include <vector>

namespace ecomp::prof {

inline constexpr int kMaxZoneDepth = 32;   ///< frames kept per stack
inline constexpr int kMaxSelfZones = 64;   ///< distinct labels per thread
inline constexpr int kMaxPcFrames = 8;     ///< raw PCs kept per sample

/// Bitmask of what push/pop must maintain. Zero (the default) makes a
/// zone push one relaxed load — cheap enough to leave compiled in.
enum ZoneMode : unsigned {
  kZoneSampling = 1u,  ///< stack maintained for the SIGPROF handler
  kZoneTiming = 2u,    ///< exact self-time accounting on every switch
};

inline std::atomic<unsigned> g_zone_mode{0};

inline bool zones_active() {
  return g_zone_mode.load(std::memory_order_relaxed) != 0;
}

/// Zone labels come from string literals / stable string_views (span
/// names live as long as the span). Not necessarily NUL-terminated.
struct ZoneLabel {
  const char* ptr = nullptr;
  std::uint32_t len = 0;
};

/// One captured stack, written by the SIGPROF handler.
struct Sample {
  std::int32_t depth = 0;  ///< 0 = interrupted outside any zone
  std::int32_t n_pcs = 0;
  ZoneLabel frames[kMaxZoneDepth];
  std::uintptr_t pcs[kMaxPcFrames];  ///< pcs[0] = interrupted PC
};

/// Per-label exact-timing accumulator. Slots are append-only per thread
/// (only the owner appends; the collector reads released slots), so all
/// fields are atomics and no lock is ever taken on the hot path.
struct SelfSlot {
  std::atomic<const char*> ptr{nullptr};
  std::atomic<std::uint32_t> len{0};
  std::atomic<std::uint64_t> self_ns{0};
  std::atomic<std::uint64_t> hits{0};
};

/// Everything the profiler keeps per thread. Created on first zone push,
/// retired (and recycled) when the thread exits; the Sample ring is only
/// attached while the sampler runs.
struct ThreadProf {
  // Zone stack: plain stores by the owning thread; `depth` is released
  // after the frame is written so the thread's own signal handler (and
  // nobody else) always sees a consistent prefix.
  ZoneLabel stack[kMaxZoneDepth];
  std::atomic<std::int32_t> depth{0};
  std::atomic<std::uint64_t> truncated{0};  ///< pushes past kMaxZoneDepth

  // Exact self-time accounting (kZoneTiming).
  std::atomic<std::uint64_t> last_switch_ns{0};
  SelfSlot self[kMaxSelfZones];
  std::atomic<std::int32_t> self_used{0};
  std::atomic<std::uint64_t> self_other_ns{0};  ///< overflow labels

  // Sample ring: SPSC — the SIGPROF handler (running on this thread)
  // produces, the collector thread consumes. `in_handler` is the
  // publication handshake that lets the profiler detach/free the ring
  // without racing a handler that already loaded the pointer.
  std::atomic<Sample*> ring{nullptr};
  std::uint32_t ring_cap = 0;  ///< written before `ring` is published
  std::atomic<std::uint32_t> head{0};
  std::atomic<std::uint32_t> tail{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<bool> in_handler{false};

  std::atomic<bool> retired{false};
};

struct ZoneRegistry {
  std::mutex mu;
  std::vector<ThreadProf*> threads;  ///< every ThreadProf ever created
  std::vector<ThreadProf*> free;     ///< retired, ready for reuse
  std::atomic<bool> want_ring{false};  ///< sampler running: attach on register
  std::atomic<std::uint32_t> ring_cap{4096};
};

inline ZoneRegistry g_zones;

inline thread_local ThreadProf* t_prof = nullptr;

/// Thread-exit sentinel: clears the raw pointer first (a late SIGPROF on
/// this thread then sees null and drops the tick), then retires the slot
/// so the collector drains what's left and start() can recycle it.
struct ThreadProfHandle {
  ThreadProf* tp = nullptr;
  ~ThreadProfHandle() {
    if (!tp) return;
    t_prof = nullptr;
    tp->retired.store(true, std::memory_order_release);
  }
};

inline thread_local ThreadProfHandle t_prof_handle;

inline void attach_ring(ThreadProf* tp) {
  if (tp->ring.load(std::memory_order_relaxed)) return;
  const std::uint32_t cap = g_zones.ring_cap.load(std::memory_order_relaxed);
  Sample* ring = new Sample[cap];
  tp->ring_cap = cap;
  tp->head.store(0, std::memory_order_relaxed);
  tp->tail.store(0, std::memory_order_relaxed);
  tp->ring.store(ring, std::memory_order_release);
}

inline ThreadProf* thread_prof_slow() {
  std::lock_guard lock(g_zones.mu);
  ThreadProf* tp;
  if (!g_zones.free.empty()) {
    tp = g_zones.free.back();
    g_zones.free.pop_back();
    tp->depth.store(0, std::memory_order_relaxed);
    tp->last_switch_ns.store(0, std::memory_order_relaxed);
  } else {
    tp = new ThreadProf();
    g_zones.threads.push_back(tp);
  }
  tp->retired.store(false, std::memory_order_relaxed);
  if (g_zones.want_ring.load(std::memory_order_relaxed)) attach_ring(tp);
  t_prof_handle.tp = tp;
  t_prof = tp;
  return tp;
}

inline ThreadProf* thread_prof() {
  ThreadProf* tp = t_prof;
  return tp ? tp : thread_prof_slow();
}

inline std::uint64_t zone_now_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// Attribute `ns` of self time to `lab` on this thread. Pointer identity
/// is the fast key (labels are literals); the report merges by content.
inline void self_account(ThreadProf* tp, ZoneLabel lab, std::uint64_t ns,
                         std::uint64_t hit) {
  const int used = tp->self_used.load(std::memory_order_relaxed);
  for (int i = 0; i < used; ++i) {
    SelfSlot& s = tp->self[i];
    if (s.ptr.load(std::memory_order_relaxed) == lab.ptr) {
      s.self_ns.fetch_add(ns, std::memory_order_relaxed);
      s.hits.fetch_add(hit, std::memory_order_relaxed);
      return;
    }
  }
  if (used < kMaxSelfZones) {
    SelfSlot& s = tp->self[used];
    s.ptr.store(lab.ptr, std::memory_order_relaxed);
    s.len.store(lab.len, std::memory_order_relaxed);
    s.self_ns.store(ns, std::memory_order_relaxed);
    s.hits.store(hit, std::memory_order_relaxed);
    tp->self_used.store(used + 1, std::memory_order_release);
    return;
  }
  tp->self_other_ns.fetch_add(ns, std::memory_order_relaxed);
}

/// Push a zone. Returns false (and pushes nothing) when profiling is off
/// or the stack is full — the caller must skip the matching pop.
inline bool zone_push(std::string_view label) {
  const unsigned mode = g_zone_mode.load(std::memory_order_relaxed);
  if (mode == 0) return false;
  ThreadProf* tp = thread_prof();
  const std::int32_t d = tp->depth.load(std::memory_order_relaxed);
  if (d >= kMaxZoneDepth) {
    tp->truncated.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const ZoneLabel lab{label.data(),
                      static_cast<std::uint32_t>(label.size())};
  if (mode & kZoneTiming) {
    const std::uint64_t now = zone_now_ns();
    const std::uint64_t last =
        tp->last_switch_ns.load(std::memory_order_relaxed);
    // Time since the last switch belongs to the zone we are nested in;
    // last == 0 means timing just turned on — nothing to attribute yet.
    if (d > 0 && last != 0)
      self_account(tp, tp->stack[d - 1], now - last, 0);
    tp->last_switch_ns.store(now, std::memory_order_relaxed);
    self_account(tp, lab, 0, 1);  // entry count
  }
  tp->stack[d] = lab;
  tp->depth.store(d + 1, std::memory_order_release);
  return true;
}

/// Pop the zone pushed by the matching zone_push(). Always pops (the
/// stack must stay balanced even if the mode flipped mid-scope).
inline void zone_pop() {
  ThreadProf* tp = t_prof;
  if (!tp) return;
  const std::int32_t d = tp->depth.load(std::memory_order_relaxed);
  if (d <= 0) return;
  if (g_zone_mode.load(std::memory_order_relaxed) & kZoneTiming) {
    const std::uint64_t now = zone_now_ns();
    const std::uint64_t last =
        tp->last_switch_ns.load(std::memory_order_relaxed);
    if (last != 0) self_account(tp, tp->stack[d - 1], now - last, 0);
    tp->last_switch_ns.store(now, std::memory_order_relaxed);
  }
  tp->depth.store(d - 1, std::memory_order_release);
}

/// RAII zone. Remembers whether its push actually happened so a mode
/// flip between construction and destruction cannot unbalance the stack.
class Zone {
 public:
  explicit Zone(std::string_view label) {
    if (zones_active()) pushed_ = zone_push(label);
  }
  ~Zone() {
    if (pushed_) zone_pop();
  }
  Zone(const Zone&) = delete;
  Zone& operator=(const Zone&) = delete;

 private:
  bool pushed_ = false;
};

}  // namespace ecomp::prof

#if defined(ECOMP_OBS_ENABLED)
#define ECOMP_PROF_CONCAT_(a, b) a##b
#define ECOMP_PROF_CONCAT(a, b) ECOMP_PROF_CONCAT_(a, b)
/// Scoped profiler zone over the rest of the enclosing block.
#define ECOMP_PROF_ZONE(label) \
  ::ecomp::prof::Zone ECOMP_PROF_CONCAT(ecomp_prof_zone_, __LINE__)(label)
#else
#define ECOMP_PROF_ZONE(label) \
  do { (void)sizeof(label); } while (0)
#endif

#include "prof/profiler.h"

#include <dlfcn.h>
#include <signal.h>
#include <sys/time.h>
#include <ucontext.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "prof/zone.h"

namespace ecomp::prof {
namespace {

std::atomic<std::uint64_t> g_lifetime_samples{0};
std::atomic<bool> g_sampler_armed{false};
bool g_handler_installed = false;  // guarded by g_run.mu

/// Pull the interrupted PC / frame pointer / stack pointer out of the
/// signal ucontext. Zeroes on unsupported architectures (the sample
/// then carries zones only).
void machine_regs(void* uctx, std::uintptr_t& pc, std::uintptr_t& fp,
                  std::uintptr_t& sp) {
  pc = fp = sp = 0;
  if (!uctx) return;
#if defined(__x86_64__)
  const auto* uc = static_cast<const ucontext_t*>(uctx);
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  sp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  const auto* uc = static_cast<const ucontext_t*>(uctx);
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
  sp = static_cast<std::uintptr_t>(uc->uc_mcontext.sp);
#else
  (void)uctx;
#endif
}

/// Best-effort frame-pointer walk (needs -fno-omit-frame-pointer, which
/// the top-level CMakeLists sets). Every dereference is constrained to a
/// window above the interrupted SP so a non-frame RBP cannot fault us
/// out of the signal handler.
int walk_frames(std::uintptr_t pc, std::uintptr_t fp, std::uintptr_t sp,
                std::uintptr_t* out, int max) {
  int n = 0;
  if (pc && n < max) out[n++] = pc;
  constexpr std::uintptr_t kWindow = 128 * 1024;
  std::uintptr_t cur = fp;
  while (n < max && cur >= sp && cur - sp < kWindow &&
         (cur & (sizeof(void*) - 1)) == 0) {
    const auto* frame = reinterpret_cast<const std::uintptr_t*>(cur);
    const std::uintptr_t next = frame[0];
    const std::uintptr_t ret = frame[1];
    if (!ret) break;
    out[n++] = ret;
    if (next <= cur) break;
    cur = next;
  }
  return n;
}

void sigprof_handler(int, siginfo_t*, void* uctx) {
  const int saved_errno = errno;
  ThreadProf* tp = t_prof;
  if (tp) {
    // seq_cst handshake with the ring-freeing side in stop(): either we
    // see the detached (null) ring, or stop() sees in_handler and waits.
    tp->in_handler.store(true, std::memory_order_seq_cst);
    Sample* ring = tp->ring.load(std::memory_order_seq_cst);
    if (ring && g_sampler_armed.load(std::memory_order_relaxed)) {
      const std::uint32_t head = tp->head.load(std::memory_order_relaxed);
      const std::uint32_t tail = tp->tail.load(std::memory_order_acquire);
      if (head - tail >= tp->ring_cap) {
        tp->dropped.fetch_add(1, std::memory_order_relaxed);
      } else {
        Sample& s = ring[head % tp->ring_cap];
        std::int32_t d = tp->depth.load(std::memory_order_acquire);
        if (d > kMaxZoneDepth) d = kMaxZoneDepth;
        for (std::int32_t i = 0; i < d; ++i) s.frames[i] = tp->stack[i];
        s.depth = d;
        std::uintptr_t pc, fp, sp;
        machine_regs(uctx, pc, fp, sp);
        s.n_pcs = walk_frames(pc, fp, sp, s.pcs, kMaxPcFrames);
        tp->head.store(head + 1, std::memory_order_release);
        g_lifetime_samples.fetch_add(1, std::memory_order_relaxed);
      }
    }
    tp->in_handler.store(false, std::memory_order_release);
  }
  errno = saved_errno;
}

struct Aggregate {
  std::map<std::string, std::uint64_t> folded;  ///< stack -> samples
  std::map<std::string, std::uint64_t> leaf;    ///< top zone -> samples
  std::map<std::uintptr_t, std::uint64_t> pcs;  ///< interrupted PC -> n
  std::uint64_t samples = 0;
};

struct RunState {
  std::mutex mu;  ///< serializes start()/stop(); collector has its own
  bool running = false;
  ProfilerOptions opt;
  std::chrono::steady_clock::time_point t0;

  std::thread collector;
  std::mutex coll_mu;
  std::condition_variable coll_cv;
  bool coll_stop = false;

  std::mutex agg_mu;
  Aggregate agg;
};

RunState& run_state() {
  static RunState s;
  return s;
}

void append_label(std::string& out, const ZoneLabel& lab) {
  if (lab.ptr && lab.len)
    out.append(lab.ptr, lab.len);
  else
    out.append("(unnamed)");
}

void consume_sample(Aggregate& agg, const Sample& s) {
  std::string key = "ecomp";
  for (std::int32_t i = 0; i < s.depth; ++i) {
    key.push_back(';');
    append_label(key, s.frames[i]);
  }
  if (s.depth == 0) key.append(";(untracked)");
  agg.folded[key] += 1;
  std::string leaf;
  if (s.depth > 0)
    append_label(leaf, s.frames[s.depth - 1]);
  else
    leaf = "(untracked)";
  agg.leaf[leaf] += 1;
  if (s.n_pcs > 0) agg.pcs[s.pcs[0]] += 1;
  agg.samples += 1;
}

void drain_ring(Aggregate& agg, ThreadProf* tp) {
  Sample* ring = tp->ring.load(std::memory_order_acquire);
  if (!ring) return;
  std::uint32_t tail = tp->tail.load(std::memory_order_relaxed);
  const std::uint32_t head = tp->head.load(std::memory_order_acquire);
  while (tail != head) {
    consume_sample(agg, ring[tail % tp->ring_cap]);
    ++tail;
  }
  tp->tail.store(tail, std::memory_order_release);
}

void drain_all_rings() {
  RunState& rs = run_state();
  std::vector<ThreadProf*> threads;
  {
    std::lock_guard lock(g_zones.mu);
    threads = g_zones.threads;
  }
  std::lock_guard lock(rs.agg_mu);
  for (ThreadProf* tp : threads) drain_ring(rs.agg, tp);
}

void collector_main() {
  RunState& rs = run_state();
  while (true) {
    bool stopping;
    {
      std::unique_lock lock(rs.coll_mu);
      rs.coll_cv.wait_for(lock, std::chrono::milliseconds(10),
                          [&] { return rs.coll_stop; });
      stopping = rs.coll_stop;
    }
    drain_all_rings();
    if (stopping) break;
  }
}

/// Detach and free `tp`'s ring, waiting out any SIGPROF handler that
/// already holds the old pointer (see the seq_cst handshake above).
void free_ring(ThreadProf* tp) {
  Sample* ring = tp->ring.exchange(nullptr, std::memory_order_seq_cst);
  if (!ring) return;
  while (tp->in_handler.load(std::memory_order_acquire))
    std::this_thread::yield();
  delete[] ring;
}

std::string symbolize(std::uintptr_t pc) {
  Dl_info info;
  std::memset(&info, 0, sizeof info);
  char buf[256];
  if (dladdr(reinterpret_cast<void*>(pc), &info) && info.dli_sname) {
    const auto off =
        pc - reinterpret_cast<std::uintptr_t>(info.dli_saddr);
    std::snprintf(buf, sizeof buf, "%s+0x%llx", info.dli_sname,
                  static_cast<unsigned long long>(off));
    return buf;
  }
  if (info.dli_fname) {
    const char* base = std::strrchr(info.dli_fname, '/');
    const auto off =
        pc - reinterpret_cast<std::uintptr_t>(info.dli_fbase);
    std::snprintf(buf, sizeof buf, "%s+0x%llx", base ? base + 1 : info.dli_fname,
                  static_cast<unsigned long long>(off));
    return buf;
  }
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(pc));
  return buf;
}

}  // namespace

Profiler& Profiler::global() {
  static Profiler p;
  return p;
}

bool Profiler::running() const {
  RunState& rs = run_state();
  std::lock_guard lock(rs.mu);
  return rs.running;
}

std::uint64_t Profiler::lifetime_samples() {
  return g_lifetime_samples.load(std::memory_order_relaxed);
}

bool Profiler::sampler_active() {
  return g_sampler_armed.load(std::memory_order_relaxed);
}

bool Profiler::start(const ProfilerOptions& opt) {
  RunState& rs = run_state();
  std::lock_guard lock(rs.mu);
  if (rs.running) return false;
  if (!opt.sampling && !opt.timing) return false;
  if (opt.sampling && opt.hz <= 0) return false;

  rs.opt = opt;
  rs.t0 = std::chrono::steady_clock::now();
  {
    std::lock_guard agg_lock(rs.agg_mu);
    rs.agg = Aggregate{};
  }

  thread_prof();  // make sure the starting thread is registered
  {
    std::lock_guard zlock(g_zones.mu);
    g_zones.ring_cap.store(opt.ring_capacity > 64 ? opt.ring_capacity : 64,
                           std::memory_order_relaxed);
    g_zones.want_ring.store(opt.sampling, std::memory_order_relaxed);
    for (ThreadProf* tp : g_zones.threads) {
      tp->self_used.store(0, std::memory_order_relaxed);
      tp->self_other_ns.store(0, std::memory_order_relaxed);
      tp->last_switch_ns.store(0, std::memory_order_relaxed);
      tp->dropped.store(0, std::memory_order_relaxed);
      tp->truncated.store(0, std::memory_order_relaxed);
      if (opt.sampling && !tp->retired.load(std::memory_order_relaxed))
        attach_ring(tp);
    }
  }

  unsigned mode = 0;
  if (opt.sampling) mode |= kZoneSampling;
  if (opt.timing) mode |= kZoneTiming;
  g_zone_mode.store(mode, std::memory_order_release);

  if (opt.sampling) {
    if (!g_handler_installed) {
      struct sigaction sa;
      std::memset(&sa, 0, sizeof sa);
      sa.sa_sigaction = sigprof_handler;
      sa.sa_flags = SA_SIGINFO | SA_RESTART;
      sigemptyset(&sa.sa_mask);
      sigaction(SIGPROF, &sa, nullptr);
      g_handler_installed = true;
    }
    {
      std::lock_guard clock_lock(rs.coll_mu);
      rs.coll_stop = false;
    }
    rs.collector = std::thread(collector_main);
    g_sampler_armed.store(true, std::memory_order_release);
    const long interval_us = std::max(1000000L / opt.hz, 1L);
    itimerval timer;
    timer.it_interval.tv_sec = interval_us / 1000000;
    timer.it_interval.tv_usec = interval_us % 1000000;
    timer.it_value = timer.it_interval;
    setitimer(ITIMER_PROF, &timer, nullptr);
  }

  rs.running = true;
  return true;
}

ProfileReport Profiler::stop() {
  RunState& rs = run_state();
  std::lock_guard lock(rs.mu);
  ProfileReport report;
  if (!rs.running) return report;

  if (rs.opt.sampling) {
    itimerval off;
    std::memset(&off, 0, sizeof off);
    setitimer(ITIMER_PROF, &off, nullptr);
    g_sampler_armed.store(false, std::memory_order_release);
  }
  g_zone_mode.store(0, std::memory_order_release);
  // Let in-flight handlers and zone switches that loaded the old mode
  // finish before tearing the rings down / reading the self tables.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));

  if (rs.opt.sampling) {
    {
      std::lock_guard clock_lock(rs.coll_mu);
      rs.coll_stop = true;
    }
    rs.coll_cv.notify_all();
    if (rs.collector.joinable()) rs.collector.join();
    drain_all_rings();  // collector's final pass + this = everything
    std::lock_guard zlock(g_zones.mu);
    g_zones.want_ring.store(false, std::memory_order_relaxed);
    for (ThreadProf* tp : g_zones.threads) free_ring(tp);
  }

  report.duration_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - rs.t0)
          .count();
  report.hz = rs.opt.sampling ? rs.opt.hz : 0;

  // Exact self-time tables, merged across threads by label content.
  struct Timing {
    std::uint64_t ns = 0;
    std::uint64_t hits = 0;
  };
  std::map<std::string, Timing> timing;
  std::uint64_t other_ns = 0;
  {
    std::lock_guard zlock(g_zones.mu);
    for (ThreadProf* tp : g_zones.threads) {
      report.truncated += tp->truncated.load(std::memory_order_relaxed);
      report.dropped += tp->dropped.load(std::memory_order_relaxed);
      other_ns += tp->self_other_ns.load(std::memory_order_relaxed);
      const int used = tp->self_used.load(std::memory_order_acquire);
      for (int i = 0; i < used; ++i) {
        const SelfSlot& s = tp->self[i];
        const char* p = s.ptr.load(std::memory_order_relaxed);
        if (!p) continue;
        std::string label(p, s.len.load(std::memory_order_relaxed));
        Timing& t = timing[label];
        t.ns += s.self_ns.load(std::memory_order_relaxed);
        t.hits += s.hits.load(std::memory_order_relaxed);
      }
    }
  }
  if (other_ns) timing["(other)"].ns += other_ns;

  Aggregate agg;
  {
    std::lock_guard agg_lock(rs.agg_mu);
    agg = std::move(rs.agg);
    rs.agg = Aggregate{};
  }
  report.samples = agg.samples;
  report.folded.assign(agg.folded.begin(), agg.folded.end());

  for (const auto& [label, t] : timing) report.total_self_ns += t.ns;
  std::map<std::string, SelfRow> rows;
  for (const auto& [label, t] : timing) {
    SelfRow& r = rows[label];
    r.label = label;
    r.self_ns = t.ns;
    r.hits = t.hits;
  }
  for (const auto& [label, n] : agg.leaf) {
    SelfRow& r = rows[label];
    r.label = label;
    r.samples = n;
  }
  for (auto& [label, r] : rows) {
    if (report.total_self_ns)
      r.time_pct = 100.0 * static_cast<double>(r.self_ns) /
                   static_cast<double>(report.total_self_ns);
    if (report.samples)
      r.sample_pct = 100.0 * static_cast<double>(r.samples) /
                     static_cast<double>(report.samples);
    report.self.push_back(r);
  }
  std::sort(report.self.begin(), report.self.end(),
            [](const SelfRow& a, const SelfRow& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.label < b.label;
            });

  std::map<std::string, std::uint64_t> sym;
  for (const auto& [pc, n] : agg.pcs) sym[symbolize(pc)] += n;
  report.pc_hot.assign(sym.begin(), sym.end());
  std::sort(report.pc_hot.begin(), report.pc_hot.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  rs.running = false;
  return report;
}

std::string ProfileReport::to_folded() const {
  std::string out;
  for (const auto& [stack, n] : folded) {
    out += stack;
    out.push_back(' ');
    out += std::to_string(n);
    out.push_back('\n');
  }
  return out;
}

std::string ProfileReport::to_table() const {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "profile: %.3fs hz=%d samples=%llu dropped=%llu "
                "truncated=%llu\n",
                duration_s, hz, static_cast<unsigned long long>(samples),
                static_cast<unsigned long long>(dropped),
                static_cast<unsigned long long>(truncated));
  os << buf;
  os << "zone                              self_ms   time%  samples  "
        "sample%     hits\n";
  for (const SelfRow& r : self) {
    std::snprintf(buf, sizeof buf, "%-32s %9.3f %7.2f %8llu %8.2f %8llu\n",
                  r.label.c_str(),
                  static_cast<double>(r.self_ns) / 1e6, r.time_pct,
                  static_cast<unsigned long long>(r.samples), r.sample_pct,
                  static_cast<unsigned long long>(r.hits));
    os << buf;
  }
  if (!pc_hot.empty()) {
    os << "hot pcs (frame-pointer leaf):\n";
    std::size_t shown = 0;
    for (const auto& [name, n] : pc_hot) {
      if (++shown > 10) break;
      std::snprintf(buf, sizeof buf, "  %8llu  %s\n",
                    static_cast<unsigned long long>(n), name.c_str());
      os << buf;
    }
  }
  return os.str();
}

double ProfileReport::self_pct(std::string_view label) const {
  for (const SelfRow& r : self)
    if (r.label == label)
      return total_self_ns ? r.time_pct : r.sample_pct;
  return 0.0;
}

void write_folded(const std::string& path, const ProfileReport& report) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open profile output: " + path);
  out << report.to_folded();
  out.flush();
  if (!out) throw std::runtime_error("cannot write profile output: " + path);
}

}  // namespace ecomp::prof

#include "prof/alloc.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace ecomp::prof {

std::vector<AllocRow> alloc_snapshot() {
  std::vector<AllocRow> out;
  const int used = g_alloc.used.load(std::memory_order_acquire);
  out.reserve(static_cast<std::size_t>(used));
  for (int i = 0; i < used; ++i) {
    const AllocSite& s = g_alloc.sites[i];
    if (!s.name) continue;
    AllocRow row;
    row.component = s.name;
    row.bytes = s.bytes.load(std::memory_order_relaxed);
    row.allocs = s.allocs.load(std::memory_order_relaxed);
    row.current = s.current.load(std::memory_order_relaxed);
    row.peak = s.peak.load(std::memory_order_relaxed);
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const AllocRow& a, const AllocRow& b) {
              return a.component < b.component;
            });
  return out;
}

std::int64_t rss_peak_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return -1;
  char line[256];
  std::int64_t kb = -1;
  while (std::fgets(line, sizeof line, f)) {
    long long v = 0;
    if (std::sscanf(line, "VmHWM: %lld kB", &v) == 1) {
      kb = v;
      break;
    }
  }
  std::fclose(f);
  return kb;
}

void publish_alloc_metrics() {
  obs::Registry& reg = obs::Registry::global();
  for (const AllocRow& row : alloc_snapshot()) {
    const std::string base = "prof.alloc." + row.component;
    reg.gauge(base + ".bytes").set(static_cast<std::int64_t>(row.bytes));
    reg.gauge(base + ".allocs").set(static_cast<std::int64_t>(row.allocs));
    reg.gauge(base + ".peak").set(static_cast<std::int64_t>(row.peak));
  }
  const std::int64_t rss = rss_peak_kb();
  if (rss >= 0) reg.gauge("prof.rss_peak_kb").set(rss);
}

}  // namespace ecomp::prof

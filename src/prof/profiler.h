// prof::Profiler — SIGPROF sampling + exact self-time profiling over the
// zone stacks declared in prof/zone.h.
//
// start() arms ITIMER_PROF (the kernel delivers SIGPROF against CPU
// time, so idle/blocked threads are never charged) and flips the zone
// mode on; the signal handler copies the interrupted thread's zone stack
// — plus a best-effort frame-pointer PC chain from the ucontext — into
// that thread's lock-free SPSC ring, and a collector thread drains the
// rings into a folded-stack aggregate every few milliseconds. stop()
// disarms the timer, drains what is left, and folds in the exact
// self-time table that zone push/pop maintained while timing mode was
// on. The folded output is FlameGraph/inferno-compatible
// ("frame;frame;frame count" lines); the self-time table is what the
// gated bench `self_time_pct` keys read (exact, so no sampling noise
// reaches the regression gate).
//
// One profile runs at a time (start() returns false otherwise). The
// SIGPROF disposition is installed once and kept — a pending tick after
// stop() hits an armed-flag check and is dropped.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ecomp::prof {

struct ProfilerOptions {
  int hz = 997;          ///< SIGPROF rate (prime, avoids lockstep)
  bool sampling = true;  ///< arm ITIMER_PROF + rings
  bool timing = true;    ///< exact self-time accounting on zone switches
  std::uint32_t ring_capacity = 4096;  ///< samples per thread ring
};

/// One row of the per-zone table: exact self time (timing mode) merged
/// with leaf sample counts (sampling mode), keyed by label content.
struct SelfRow {
  std::string label;
  std::uint64_t hits = 0;      ///< zone entries (timing mode)
  std::uint64_t self_ns = 0;   ///< exact self time
  double time_pct = 0.0;       ///< self_ns / total self_ns, percent
  std::uint64_t samples = 0;   ///< SIGPROF ticks with this zone on top
  double sample_pct = 0.0;     ///< samples / total samples, percent
};

struct ProfileReport {
  double duration_s = 0.0;
  int hz = 0;
  std::uint64_t samples = 0;   ///< stacks captured
  std::uint64_t dropped = 0;   ///< ticks lost (ring full / no ring)
  std::uint64_t truncated = 0; ///< pushes past kMaxZoneDepth
  std::uint64_t total_self_ns = 0;

  /// Folded stacks, root-first, lexicographically sorted (deterministic
  /// output for identical aggregates): "ecomp;outer;inner <count>".
  std::vector<std::pair<std::string, std::uint64_t>> folded;
  std::vector<SelfRow> self;  ///< sorted by self_ns, then samples, desc
  /// Best-effort symbolized interrupted PCs, count-desc. Frame-pointer
  /// quality: needs -fno-omit-frame-pointer; statics symbolize only
  /// with -rdynamic (the `ecomp` binary links with it).
  std::vector<std::pair<std::string, std::uint64_t>> pc_hot;

  /// FlameGraph-compatible collapsed-stack text (one line per stack).
  std::string to_folded() const;
  /// Human-readable self-time table + sampler counters.
  std::string to_table() const;
  /// time_pct for `label` (sample_pct when timing was off); 0 if absent.
  double self_pct(std::string_view label) const;
};

class Profiler {
 public:
  static Profiler& global();

  /// Begin a profile. Returns false (and does nothing) if one is
  /// already running or `opt` enables neither mode.
  bool start(const ProfilerOptions& opt = {});
  /// End the profile and aggregate everything captured since start().
  ProfileReport stop();
  bool running() const;

  /// Stacks captured since process start (across runs) — STATS surface.
  static std::uint64_t lifetime_samples();
  /// True while ITIMER_PROF is armed — STATS surface.
  static bool sampler_active();

 private:
  Profiler() = default;
};

/// Write report.to_folded() to `path`; throws ecomp-style
/// std::runtime_error on IO failure.
void write_folded(const std::string& path, const ProfileReport& report);

}  // namespace ecomp::prof

// RFC 1952 gzip member format over this repo's DEFLATE implementation.
//
// This is the exact on-disk format of the paper's gzip 1.2.4 tool, which
// makes our LZ77/Huffman stack directly interoperable with real gzip:
// the tests round-trip through /usr/bin/gzip where available.
#pragma once

#include "util/bytes.h"

namespace ecomp::compress {

/// Produce a complete gzip member (.gz file contents).
Bytes gzip_compress(ByteSpan input, int level = 9);

/// Decode a gzip member produced by this library or any standard gzip.
/// Handles the optional FEXTRA/FNAME/FCOMMENT/FHCRC header fields;
/// verifies CRC32 and ISIZE. Throws Error on malformed input.
Bytes gzip_decompress(ByteSpan input);

/// True if the buffer starts with the gzip magic (1f 8b).
bool looks_like_gzip(ByteSpan data);

}  // namespace ecomp::compress

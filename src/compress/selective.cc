#include "compress/selective.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <future>

#include "compress/container.h"
#include "compress/deflate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "util/crc32.h"

namespace ecomp::compress {
namespace {

/// One fully framed wire chunk (flag | varint payload_size | payload)
/// plus its decision record — the unit both the serial loop and the
/// parallel reorder buffer append, so the two paths are byte-identical
/// by construction.
struct EncodedBlock {
  Bytes chunk;
  BlockInfo info;
};

/// Encode one block exactly as the serial writer always has. Safe to
/// call concurrently: the codec's compress() is const-thread-safe and
/// the policy is required to be (see SelectivePolicy docs).
EncodedBlock encode_block(const DeflateCodec& codec,
                          const SelectivePolicy& policy, ByteSpan block) {
  ECOMP_SLIDING_TIMER("selective.encode_block_us");
  const std::size_t len = block.size();

  // Fig. 10: small blocks ship raw; otherwise compress and keep the
  // compressed form only if the energy test passes.
  bool use_compressed = false;
  Bytes compressed;
  if (len >= policy.min_block_bytes) {
    compressed = codec.compress(block);
    use_compressed = policy.energy_test(len, compressed.size());
  }
  // Note: the name passed to ECOMP_COUNT must be a fixed literal (the
  // macro caches the instrument per call site).
  if (use_compressed)
    ECOMP_COUNT("selective.blocks_compressed");
  else
    ECOMP_COUNT("selective.blocks_raw");

  EncodedBlock eb;
  eb.info.raw_size = len;
  eb.info.compressed = use_compressed;
  eb.chunk.push_back(use_compressed ? 1 : 0);
  if (use_compressed) {
    eb.info.payload_size = compressed.size();
    put_varint(eb.chunk, compressed.size());
    eb.chunk.insert(eb.chunk.end(), compressed.begin(), compressed.end());
  } else {
    eb.info.payload_size = len;
    put_varint(eb.chunk, len);
    eb.chunk.insert(eb.chunk.end(), block.begin(), block.end());
  }
  return eb;
}

void write_selective_header(Bytes& out, ByteSpan input,
                            std::size_t block_size) {
  write_header(out, kSelectiveMagic, input.size(), crc32(input));
  put_varint(out, block_size);
  const std::size_t n_blocks =
      input.empty() ? 0 : (input.size() + block_size - 1) / block_size;
  put_varint(out, n_blocks);
}

}  // namespace

SelectivePolicy SelectivePolicy::always() {
  SelectivePolicy p;
  p.min_block_bytes = 0;
  p.energy_test = [](std::size_t raw, std::size_t comp) {
    return comp < raw;
  };
  return p;
}

SelectivePolicy SelectivePolicy::never() {
  SelectivePolicy p;
  p.min_block_bytes = 0;
  p.energy_test = [](std::size_t, std::size_t) { return false; };
  return p;
}

SelectiveResult selective_compress(ByteSpan input,
                                   const SelectivePolicy& policy,
                                   std::size_t block_size, int level,
                                   unsigned threads) {
  ECOMP_TRACE_SPAN("selective.compress", "codec");
  if (block_size == 0) throw Error("selective: block_size must be > 0");
  if (!policy.energy_test)
    throw Error("selective: policy requires an energy_test");
  const DeflateCodec codec(level);

  SelectiveResult res;
  Bytes& out = res.container;
  write_selective_header(out, input, block_size);
  const std::size_t n_blocks =
      input.empty() ? 0 : (input.size() + block_size - 1) / block_size;

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, n_blocks));
  if (workers <= 1) {
    for (std::size_t off = 0; off < input.size(); off += block_size) {
      const std::size_t len = std::min(block_size, input.size() - off);
      EncodedBlock eb = encode_block(codec, policy, input.subspan(off, len));
      out.insert(out.end(), eb.chunk.begin(), eb.chunk.end());
      res.blocks.push_back(eb.info);
    }
    return res;
  }

  // Parallel mode: every block compresses independently on the pool;
  // the futures vector is the reorder buffer — results are appended
  // strictly in block order, so the container bytes match the serial
  // path exactly. (A worker's exception resurfaces here at its block's
  // position, after the pool has drained.)
  std::vector<std::future<EncodedBlock>> pending;
  pending.reserve(n_blocks);
  par::ThreadPool pool(workers);
  for (std::size_t off = 0; off < input.size(); off += block_size) {
    const std::size_t len = std::min(block_size, input.size() - off);
    const ByteSpan block = input.subspan(off, len);
    pending.push_back(pool.async(
        [&codec, &policy, block] { return encode_block(codec, policy, block); }));
  }
  for (auto& fut : pending) {
    EncodedBlock eb = fut.get();
    out.insert(out.end(), eb.chunk.begin(), eb.chunk.end());
    res.blocks.push_back(eb.info);
  }
  return res;
}

namespace {

struct ParsedBlock {
  BlockInfo info;
  std::size_t payload_offset = 0;
};

struct ParsedContainer {
  Header header;
  std::size_t block_size = 0;
  std::vector<ParsedBlock> blocks;
};

ParsedContainer parse(ByteSpan container) {
  ParsedContainer pc;
  pc.header = read_header(container, kSelectiveMagic);
  std::size_t pos = pc.header.payload_offset;
  pc.block_size = get_varint(container, pos);
  const std::uint64_t n_blocks = get_varint(container, pos);
  std::uint64_t raw_total = 0;
  for (std::uint64_t b = 0; b < n_blocks; ++b) {
    if (pos >= container.size()) throw Error("selective: truncated flags");
    const std::uint8_t flag = container[pos++];
    if (flag > 1) throw Error("selective: bad block flag");
    ParsedBlock blk;
    blk.info.compressed = flag == 1;
    blk.info.payload_size = get_varint(container, pos);
    blk.payload_offset = pos;
    if (pos + blk.info.payload_size > container.size())
      throw Error("selective: truncated block payload");
    pos += blk.info.payload_size;
    // Raw size: directly for raw blocks, from the member header for
    // compressed ones.
    if (blk.info.compressed) {
      const Header mh = read_header(
          container.subspan(blk.payload_offset, blk.info.payload_size),
          kDeflateMagic);
      blk.info.raw_size = mh.original_size;
    } else {
      blk.info.raw_size = blk.info.payload_size;
    }
    raw_total += blk.info.raw_size;
    pc.blocks.push_back(blk);
  }
  if (raw_total != pc.header.original_size)
    throw Error("selective: block sizes disagree with header");
  return pc;
}

}  // namespace

Bytes selective_decompress(ByteSpan container, unsigned threads) {
  ECOMP_TRACE_SPAN("selective.decompress", "codec");
  const ParsedContainer pc = parse(container);
  const DeflateCodec codec;

  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(threads, pc.blocks.size()));
  if (workers <= 1) {
    Bytes out;
    out.reserve(pc.header.original_size);
    for (const auto& blk : pc.blocks) {
      const ByteSpan payload =
          container.subspan(blk.payload_offset, blk.info.payload_size);
      if (blk.info.compressed) {
        const Bytes raw = codec.decompress(payload);
        out.insert(out.end(), raw.begin(), raw.end());
      } else {
        out.insert(out.end(), payload.begin(), payload.end());
      }
    }
    check_crc(pc.header, out);
    return out;
  }

  // Parallel mode: the block table gives every block's output offset up
  // front (prefix sum of raw sizes), so workers inflate straight into
  // disjoint slices of the final buffer; raw blocks are plain copies.
  Bytes out(pc.header.original_size);
  std::vector<std::future<void>> pending;
  pending.reserve(pc.blocks.size());
  par::ThreadPool pool(workers);
  std::size_t off = 0;
  for (const auto& blk : pc.blocks) {
    const ByteSpan payload =
        container.subspan(blk.payload_offset, blk.info.payload_size);
    std::uint8_t* dst = out.data() + off;
    const std::size_t expect = blk.info.raw_size;
    off += expect;
    if (!blk.info.compressed) {
      if (!payload.empty()) std::memcpy(dst, payload.data(), payload.size());
      continue;
    }
    pending.push_back(pool.async([&codec, payload, dst, expect] {
      const Bytes raw = codec.decompress(payload);
      if (raw.size() != expect)
        throw Error("selective: block decoded to unexpected size");
      std::memcpy(dst, raw.data(), raw.size());
    }));
  }
  for (auto& fut : pending) fut.get();
  check_crc(pc.header, out);
  return out;
}

std::vector<BlockInfo> selective_block_info(ByteSpan container) {
  const ParsedContainer pc = parse(container);
  std::vector<BlockInfo> infos;
  infos.reserve(pc.blocks.size());
  for (const auto& blk : pc.blocks) infos.push_back(blk.info);
  return infos;
}

Bytes selective_decode_block(const BlockInfo& info, ByteSpan payload,
                             bool is_compressed) {
  if (payload.size() != info.payload_size)
    throw Error("selective: payload size mismatch");
  if (!is_compressed) return Bytes(payload.begin(), payload.end());
  return DeflateCodec().decompress(payload);
}

SalvageResult selective_salvage(ByteSpan container) {
  ECOMP_TRACE_SPAN("selective.salvage", "codec");
  SalvageResult res;
  RecoveryReport& rep = res.report;

  Header h;
  std::size_t pos = 0;
  std::uint64_t block_size = 0, n_blocks = 0;
  try {
    h = read_header(container, kSelectiveMagic);
    pos = h.payload_offset;
    block_size = get_varint(container, pos);
    n_blocks = get_varint(container, pos);
  } catch (const Error&) {
    rep.framing_truncated = true;
    return res;
  }
  // A corrupted header varint can claim an absurd size; don't let it
  // drive zero-fill allocations. A real container never expands a block
  // by more than ~1032x (deflate's stored-block bound is far tighter).
  constexpr std::uint64_t kMaxExpansion = 4096;
  if (block_size == 0 || n_blocks > container.size() ||
      h.original_size / kMaxExpansion > container.size()) {
    rep.framing_truncated = true;
    return res;
  }

  const DeflateCodec codec;
  Bytes& out = res.data;
  out.reserve(h.original_size);
  for (std::uint64_t b = 0; b < n_blocks; ++b) {
    const std::uint64_t done = b * block_size;
    if (done >= h.original_size) break;  // over-declared block count
    const std::uint64_t expected_raw =
        std::min<std::uint64_t>(block_size, h.original_size - done);

    // Parse this block's framing. If it is gone, so is every boundary
    // after it: the tail cannot be located and is lost outright.
    std::uint8_t flag = 0;
    std::uint64_t payload_size = 0;
    std::size_t payload_off = 0;
    try {
      if (pos >= container.size()) throw Error("selective: truncated");
      flag = container[pos];
      std::size_t p = pos + 1;
      payload_size = get_varint(container, p);
      payload_off = p;
      if (payload_off + payload_size > container.size())
        throw Error("selective: truncated block payload");
    } catch (const Error&) {
      rep.framing_truncated = true;
      rep.blocks_lost += n_blocks - b;
      rep.bytes_lost += h.original_size - done;
      rep.blocks_total = n_blocks;
      rep.crc_ok = false;
      return res;
    }
    pos = payload_off + payload_size;
    ++rep.blocks_total;

    // Decode. A corrupted flag, a failed inflate, a member-CRC mismatch
    // or a wrong decoded size all cost exactly this block: zero-fill to
    // the expected size and continue at the next boundary.
    Bytes raw;
    bool ok = flag <= 1;
    if (ok) {
      try {
        const ByteSpan payload = container.subspan(payload_off, payload_size);
        raw = flag == 1 ? codec.decompress(payload)
                        : Bytes(payload.begin(), payload.end());
        ok = raw.size() == expected_raw;
      } catch (const Error&) {
        ok = false;
      }
    }
    if (ok) {
      out.insert(out.end(), raw.begin(), raw.end());
      ++rep.blocks_recovered;
      rep.bytes_recovered += raw.size();
    } else {
      out.insert(out.end(), static_cast<std::size_t>(expected_raw), 0);
      ++rep.blocks_lost;
      rep.bytes_lost += expected_raw;
    }
  }
  if (out.size() < h.original_size) {
    // Fewer blocks declared than the size needs: missing tail.
    rep.framing_truncated = true;
    rep.bytes_lost += h.original_size - out.size();
  }
  rep.crc_ok = out.size() == h.original_size && crc32(out) == h.crc;
  return res;
}

/// Parallel-mode state: the codec the workers share, the pool, and the
/// lookahead window of in-flight block futures (the reorder buffer —
/// chunks are handed out strictly in submission order).
struct SelectiveStreamEncoder::Pipeline {
  DeflateCodec codec;
  std::size_t submit_off = 0;  ///< next block offset to enqueue
  std::deque<std::future<EncodedBlock>> inflight;
  par::ThreadPool pool;  // last member: joins before futures/codec die

  Pipeline(int level, unsigned workers) : codec(level), pool(workers) {}
};

SelectiveStreamEncoder::SelectiveStreamEncoder(ByteSpan input,
                                               SelectivePolicy policy,
                                               std::size_t block_size,
                                               int level, unsigned threads)
    : input_(input),
      policy_(std::move(policy)),
      block_size_(block_size),
      level_(level) {
  if (block_size_ == 0) throw Error("selective: block_size must be > 0");
  if (!policy_.energy_test)
    throw Error("selective: policy requires an energy_test");
  const std::size_t n_blocks =
      input_.empty() ? 0 : (input_.size() + block_size_ - 1) / block_size_;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, n_blocks));
  if (workers > 1) pipeline_ = std::make_unique<Pipeline>(level_, workers);
}

SelectiveStreamEncoder::~SelectiveStreamEncoder() = default;

Bytes SelectiveStreamEncoder::next_chunk() {
  if (!header_sent_) {
    header_sent_ = true;
    Bytes header;
    write_selective_header(header, input_, block_size_);
    return header;
  }
  if (offset_ >= input_.size()) return {};

  if (pipeline_) {
    // Keep up to 2 blocks per worker compressing ahead of the wire.
    Pipeline& pl = *pipeline_;
    const std::size_t window = 2 * static_cast<std::size_t>(pl.pool.size());
    while (pl.submit_off < input_.size() && pl.inflight.size() < window) {
      const std::size_t len =
          std::min(block_size_, input_.size() - pl.submit_off);
      const ByteSpan block = input_.subspan(pl.submit_off, len);
      pl.submit_off += len;
      pl.inflight.push_back(pl.pool.async([this, &pl, block] {
        return encode_block(pl.codec, policy_, block);
      }));
    }
    EncodedBlock eb = pl.inflight.front().get();
    pl.inflight.pop_front();
    offset_ += eb.info.raw_size;
    blocks_.push_back(eb.info);
    return std::move(eb.chunk);
  }

  const std::size_t len = std::min(block_size_, input_.size() - offset_);
  const ByteSpan block = input_.subspan(offset_, len);
  offset_ += len;
  EncodedBlock eb = encode_block(DeflateCodec(level_), policy_, block);
  blocks_.push_back(eb.info);
  return std::move(eb.chunk);
}

}  // namespace ecomp::compress

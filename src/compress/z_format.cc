#include "compress/z_format.h"

#include <unordered_map>
#include <vector>

namespace ecomp::compress {
namespace {

constexpr std::uint8_t kMagic1 = 0x1f;
constexpr std::uint8_t kMagic2 = 0x9d;
constexpr std::uint8_t kBlockModeFlag = 0x80;
constexpr int kInitBits = 9;
constexpr std::uint32_t kClear = 256;
constexpr std::uint32_t kFirst = 257;
constexpr std::uint64_t kRatioCheckGap = 10000;

/// LSB-first bit sink with group-aligned padding (the .Z quirk).
class ZBitWriter {
 public:
  void put(std::uint32_t code, int bits) {
    acc_ |= static_cast<std::uint64_t>(code) << fill_;
    fill_ += bits;
    pos_bits_ += static_cast<std::uint64_t>(bits);
    while (fill_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xff));
      acc_ >>= 8;
      fill_ -= 8;
    }
  }

  /// Pad with zero bits so that (pos - origin) is a multiple of
  /// n_bits*8, then mark a new group origin.
  void align_group(int n_bits) {
    const std::uint64_t group = static_cast<std::uint64_t>(n_bits) * 8;
    const std::uint64_t used = pos_bits_ - origin_bits_;
    const std::uint64_t rem = used % group;
    if (rem != 0) {
      std::uint64_t pad = group - rem;
      while (pad > 0) {
        const int chunk = pad > 32 ? 32 : static_cast<int>(pad);
        put(0, chunk);
        pad -= static_cast<std::uint64_t>(chunk);
      }
    }
    origin_bits_ = pos_bits_;
  }

  Bytes take() {
    while (fill_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xff));
      acc_ >>= 8;
      fill_ = fill_ > 8 ? fill_ - 8 : 0;
    }
    return std::move(out_);
  }

  std::uint64_t bits_written() const { return pos_bits_; }

 private:
  Bytes out_;
  std::uint64_t acc_ = 0;
  int fill_ = 0;
  std::uint64_t pos_bits_ = 0;
  std::uint64_t origin_bits_ = 0;
};

/// LSB-first bit source with the same group-aligned skipping.
class ZBitReader {
 public:
  explicit ZBitReader(ByteSpan data) : data_(data) {}

  /// Read `bits`; returns false at end of stream (fewer bits left).
  bool get(int bits, std::uint32_t& code) {
    if (pos_bits_ + static_cast<std::uint64_t>(bits) >
        static_cast<std::uint64_t>(data_.size()) * 8)
      return false;
    std::uint64_t v = 0;
    for (int i = 0; i < bits; ++i) {
      const std::uint64_t bit_index = pos_bits_ + static_cast<std::uint64_t>(i);
      const std::uint8_t byte = data_[bit_index >> 3];
      v |= static_cast<std::uint64_t>((byte >> (bit_index & 7)) & 1) << i;
    }
    pos_bits_ += static_cast<std::uint64_t>(bits);
    code = static_cast<std::uint32_t>(v);
    return true;
  }

  void align_group(int n_bits) {
    const std::uint64_t group = static_cast<std::uint64_t>(n_bits) * 8;
    const std::uint64_t used = pos_bits_ - origin_bits_;
    const std::uint64_t rem = used % group;
    if (rem != 0) pos_bits_ += group - rem;
    origin_bits_ = pos_bits_;
  }

 private:
  ByteSpan data_;
  std::uint64_t pos_bits_ = 0;
  std::uint64_t origin_bits_ = 0;
};

}  // namespace

bool looks_like_z(ByteSpan data) {
  return data.size() >= 2 && data[0] == kMagic1 && data[1] == kMagic2;
}

/// Shadow of the historical decoder's width/slot state machine (gzip's
/// unlzw.c). The encoder advances this shadow once per emitted code,
/// exactly as the decoder will per read, and emits at the shadow's
/// current width — bit-level agreement by construction, including the
/// quirks (slot 256 burned after CLEAR; width growing past max_bits
/// when the cap is 9).
struct UnlzwShadow {
  int max_bits;
  std::uint32_t maxmaxcode;
  int n_bits = kInitBits;
  std::uint32_t maxcode = (1u << kInitBits) - 1;
  std::uint32_t free_ent;
  bool first = true;

  explicit UnlzwShadow(int mb)
      : max_bits(mb), maxmaxcode(1u << mb), free_ent(kFirst) {}

  /// Decoder's pre-read check; pads the writer when the decoder skips.
  void pre_read(ZBitWriter& bw) {
    if (free_ent > maxcode) {
      bw.align_group(n_bits);
      ++n_bits;
      maxcode =
          n_bits == max_bits ? maxmaxcode : (1u << n_bits) - 1;
    }
  }

  /// Decoder's post-read bookkeeping for code `c`.
  void post_read(ZBitWriter& bw, std::uint32_t c) {
    if (first) {
      first = false;  // oldcode==-1 path: no table add
      return;
    }
    if (c == kClear) {
      bw.align_group(n_bits);
      n_bits = kInitBits;
      maxcode = (1u << n_bits) - 1;
      free_ent = kFirst - 1;  // slot 256 burns on the next add
      return;
    }
    if (free_ent < maxmaxcode) ++free_ent;
  }
};

Bytes z_compress(ByteSpan input, int max_bits) {
  if (max_bits < kInitBits || max_bits > 16)
    throw Error("z: max_bits must be in [9,16]");
  Bytes out = {kMagic1, kMagic2,
               static_cast<std::uint8_t>(max_bits | kBlockModeFlag)};
  if (input.empty()) return out;

  const std::uint32_t maxmaxcode = 1u << max_bits;
  ZBitWriter bw;
  UnlzwShadow shadow(max_bits);
  std::unordered_map<std::uint64_t, std::uint32_t> table;
  auto key = [](std::uint32_t prefix, std::uint8_t byte) {
    return (static_cast<std::uint64_t>(prefix) << 8) | byte;
  };

  auto emit = [&](std::uint32_t code) {
    shadow.pre_read(bw);
    bw.put(code, shadow.n_bits);
    shadow.post_read(bw, code);
  };

  std::uint32_t ent = input[0];
  std::uint64_t in_count = 1;
  std::uint64_t next_check = kRatioCheckGap;
  double best_ratio = 0.0;
  bool table_full = false;

  for (std::size_t i = 1; i < input.size(); ++i) {
    const std::uint8_t c = input[i];
    ++in_count;
    const auto it = table.find(key(ent, c));
    if (it != table.end()) {
      ent = it->second;
      continue;
    }
    emit(ent);
    if (!table_full) {
      // Our new entry lands in the decoder at its NEXT read, taking the
      // slot the shadow currently points at.
      if (shadow.free_ent < maxmaxcode) {
        table.emplace(key(ent, c), shadow.free_ent);
      } else {
        table_full = true;
      }
    } else if (in_count >= next_check) {
      next_check = in_count + kRatioCheckGap;
      const double ratio = static_cast<double>(in_count) /
                           (static_cast<double>(bw.bits_written()) / 8 + 1);
      if (ratio > best_ratio) {
        best_ratio = ratio;
      } else {
        emit(kClear);
        table.clear();
        table_full = false;
        best_ratio = 0.0;
      }
    }
    ent = c;
  }
  emit(ent);

  const Bytes payload = bw.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Bytes z_decompress(ByteSpan input) {
  if (!looks_like_z(input)) throw Error("z: bad magic");
  if (input.size() < 3) throw Error("z: truncated header");
  const std::uint8_t flags = input[2];
  const int max_bits = flags & 0x1f;
  const bool block_mode = (flags & kBlockModeFlag) != 0;
  if (max_bits < kInitBits || max_bits > 16)
    throw Error("z: unsupported max_bits");
  const std::uint32_t maxmaxcode = 1u << max_bits;

  ZBitReader br(input.subspan(3));
  // prefix/suffix tables, historical layout.
  std::vector<std::uint32_t> prefix(maxmaxcode, 0);
  std::vector<std::uint8_t> suffix(maxmaxcode, 0);

  int n_bits = kInitBits;
  // Mirrors gzip's unlzw exactly, including its quirk: maxcode starts
  // at 2^9-1 unconditionally, so with max_bits = 9 the width still
  // grows to 10 bits once the table fills (codes 512..1023 unused).
  std::uint32_t maxcode = (1u << n_bits) - 1;
  std::uint32_t free_ent = block_mode ? kFirst : 256;

  Bytes out;
  Bytes stack;
  std::int64_t oldcode = -1;
  std::uint8_t finchar = 0;

  std::uint32_t code = 0;
  while (true) {
    if (free_ent > maxcode) {
      br.align_group(n_bits);
      ++n_bits;
      maxcode = n_bits == max_bits ? maxmaxcode : (1u << n_bits) - 1;
    }
    if (!br.get(n_bits, code)) break;  // end of stream

    if (oldcode == -1) {
      if (code > 255) throw Error("z: first code must be a literal");
      finchar = static_cast<std::uint8_t>(code);
      oldcode = static_cast<std::int64_t>(code);
      out.push_back(finchar);
      continue;
    }
    if (code == kClear && block_mode) {
      // Historical behaviour: free_ent restarts at FIRST-1 (slot 256
      // gets burned by the next add), widths restart at 9 bits.
      br.align_group(n_bits);
      n_bits = kInitBits;
      maxcode = (1u << n_bits) - 1;
      free_ent = kFirst - 1;
      continue;
    }

    const std::uint32_t incode = code;
    stack.clear();
    if (code >= free_ent) {
      if (code > free_ent) throw Error("z: corrupt stream (code too big)");
      stack.push_back(finchar);  // KwKwK
      code = static_cast<std::uint32_t>(oldcode);
    }
    while (code >= 256) {
      stack.push_back(suffix[code]);
      code = prefix[code];
    }
    finchar = static_cast<std::uint8_t>(code);
    stack.push_back(finchar);
    out.insert(out.end(), stack.rbegin(), stack.rend());

    if (free_ent < maxmaxcode) {
      prefix[free_ent] = static_cast<std::uint32_t>(oldcode);
      suffix[free_ent] = finchar;
      ++free_ent;
    }
    oldcode = static_cast<std::int64_t>(incode);
  }
  return out;
}

}  // namespace ecomp::compress

#include "compress/bwt.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"

namespace ecomp::compress {

Bytes bwt_forward(ByteSpan block, std::uint32_t& primary) {
  const std::size_t n = block.size();
  ECOMP_COUNT("bwt.block_sorts");
  ECOMP_OBSERVE("bwt.block_bytes", ::ecomp::obs::pow2_bounds(21), n);
  primary = 0;
  if (n == 0) return {};
  if (n == 1) return Bytes(block.begin(), block.end());

  // Sort cyclic rotations by prefix doubling. rank[i] is the order class
  // of the rotation starting at i considering its first k characters.
  // `rank` is padded to 2n with a copy of itself (rank[n+i] == rank[i])
  // so the cyclic second key rank[(i+k) % n] becomes the branch- and
  // division-free rank[i + kk] with kk = k % n reduced once per round.
  std::vector<std::uint32_t> sa(n), rank(2 * n), new_rank(2 * n), tmp(n), cnt;
  for (std::size_t i = 0; i < n; ++i) {
    sa[i] = static_cast<std::uint32_t>(i);
    rank[i] = block[i];
    rank[n + i] = block[i];
  }

  for (std::size_t k = 1;; k <<= 1) {
    const std::size_t kk = k % n;
    auto rank_at = [&](std::uint32_t i) { return rank[i]; };
    auto second_key = [&](std::uint32_t i) {
      return rank[i + kk];
    };

    // Radix sort sa by (rank[i], rank[i+k]) — two counting-sort passes.
    const std::uint32_t max_rank =
        *std::max_element(rank.begin(), rank.begin() + static_cast<std::ptrdiff_t>(n)) + 1;

    // Pass 1: by second key.
    cnt.assign(max_rank + 1, 0);
    for (std::size_t i = 0; i < n; ++i) ++cnt[second_key(sa[i])];
    for (std::size_t i = 1; i < cnt.size(); ++i) cnt[i] += cnt[i - 1];
    for (std::size_t i = n; i-- > 0;)
      tmp[--cnt[second_key(sa[i])]] = sa[i];
    // Pass 2: by first key (stable, so second-key order is preserved).
    cnt.assign(max_rank + 1, 0);
    for (std::size_t i = 0; i < n; ++i) ++cnt[rank_at(tmp[i])];
    for (std::size_t i = 1; i < cnt.size(); ++i) cnt[i] += cnt[i - 1];
    for (std::size_t i = n; i-- > 0;) sa[--cnt[rank_at(tmp[i])]] = tmp[i];

    // Re-rank (writing both halves keeps the padding invariant).
    new_rank[sa[0]] = 0;
    new_rank[static_cast<std::size_t>(sa[0]) + n] = 0;
    std::uint32_t classes = 1;
    for (std::size_t i = 1; i < n; ++i) {
      const bool same = rank_at(sa[i]) == rank_at(sa[i - 1]) &&
                        second_key(sa[i]) == second_key(sa[i - 1]);
      const std::uint32_t r = same ? classes - 1 : classes++;
      new_rank[sa[i]] = r;
      new_rank[static_cast<std::size_t>(sa[i]) + n] = r;
    }
    rank.swap(new_rank);
    if (classes == n) break;
    if (k >= n) break;  // all rotations compared full-length; ties remain
  }

  Bytes last(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (sa[i] == 0) primary = static_cast<std::uint32_t>(i);
    last[i] = block[sa[i] == 0 ? n - 1 : sa[i] - 1];
  }
  return last;
}

Bytes bwt_inverse(ByteSpan last_column, std::uint32_t primary) {
  const std::size_t n = last_column.size();
  if (n == 0) return {};
  if (primary >= n) throw Error("bwt: primary index out of range");

  // lf[i]: row of the rotation obtained by rotating row i right by one.
  std::vector<std::uint32_t> starts(256, 0);
  for (std::uint8_t c : last_column) ++starts[c];
  std::uint32_t sum = 0;
  for (int c = 0; c < 256; ++c) {
    const std::uint32_t cc = starts[c];
    starts[c] = sum;
    sum += cc;
  }
  std::vector<std::uint32_t> lf(n);
  for (std::size_t i = 0; i < n; ++i) lf[i] = starts[last_column[i]]++;

  Bytes out(n);
  std::uint32_t p = primary;
  for (std::size_t k = n; k-- > 0;) {
    out[k] = last_column[p];
    p = lf[p];
  }
  return out;
}

Bytes rle1_encode(ByteSpan input) {
  Bytes out;
  out.reserve(input.size());
  std::size_t i = 0;
  while (i < input.size()) {
    const std::uint8_t b = input[i];
    std::size_t run = 1;
    while (i + run < input.size() && input[i + run] == b && run < 259) ++run;
    if (run >= 4) {
      out.insert(out.end(), 4, b);
      out.push_back(static_cast<std::uint8_t>(run - 4));
    } else {
      out.insert(out.end(), run, b);
    }
    i += run;
  }
  return out;
}

Bytes rle1_decode(ByteSpan input) {
  Bytes out;
  out.reserve(input.size());
  std::size_t i = 0;
  while (i < input.size()) {
    const std::uint8_t b = input[i];
    std::size_t run = 1;
    while (run < 4 && i + run < input.size() && input[i + run] == b) ++run;
    out.insert(out.end(), run, b);
    i += run;
    if (run == 4) {
      if (i >= input.size()) throw Error("rle1: truncated run count");
      out.insert(out.end(), input[i], b);
      ++i;
    }
  }
  return out;
}

Bytes mtf_encode(ByteSpan input) {
  std::uint8_t order[256];
  for (int i = 0; i < 256; ++i) order[i] = static_cast<std::uint8_t>(i);
  Bytes out;
  out.reserve(input.size());
  for (std::uint8_t b : input) {
    int idx = 0;
    while (order[idx] != b) ++idx;
    out.push_back(static_cast<std::uint8_t>(idx));
    // Move to front.
    for (int j = idx; j > 0; --j) order[j] = order[j - 1];
    order[0] = b;
  }
  return out;
}

Bytes mtf_decode(ByteSpan input) {
  std::uint8_t order[256];
  for (int i = 0; i < 256; ++i) order[i] = static_cast<std::uint8_t>(i);
  Bytes out;
  out.reserve(input.size());
  for (std::uint8_t idx : input) {
    const std::uint8_t b = order[idx];
    out.push_back(b);
    for (int j = idx; j > 0; --j) order[j] = order[j - 1];
    order[0] = b;
  }
  return out;
}

std::vector<std::uint16_t> zrle_encode(ByteSpan mtf) {
  std::vector<std::uint16_t> out;
  out.reserve(mtf.size() / 2 + 16);
  std::size_t i = 0;
  auto flush_run = [&](std::uint64_t r) {
    // Bijective base-2: digits RUNA (value 1) and RUNB (value 2) at
    // positional weight 2^k.
    while (r > 0) {
      if (r & 1) {
        out.push_back(kZrleRunA);
        r = (r - 1) >> 1;
      } else {
        out.push_back(kZrleRunB);
        r = (r - 2) >> 1;
      }
    }
  };
  while (i < mtf.size()) {
    if (mtf[i] == 0) {
      std::uint64_t run = 0;
      while (i < mtf.size() && mtf[i] == 0) {
        ++run;
        ++i;
      }
      flush_run(run);
    } else {
      out.push_back(static_cast<std::uint16_t>(mtf[i] + 1));
      ++i;
    }
  }
  out.push_back(kZrleEob);
  return out;
}

Bytes zrle_decode(const std::vector<std::uint16_t>& syms) {
  Bytes out;
  std::uint64_t run = 0;
  std::uint64_t place = 1;
  auto flush_run = [&] {
    if (run > 0) {
      out.insert(out.end(), run, 0);
      run = 0;
    }
    place = 1;
  };
  for (std::uint16_t s : syms) {
    if (s == kZrleRunA || s == kZrleRunB) {
      run += place * (s == kZrleRunA ? 1 : 2);
      place <<= 1;
      continue;
    }
    flush_run();
    if (s == kZrleEob) return out;
    if (s > 256) throw Error("zrle: bad symbol");
    out.push_back(static_cast<std::uint8_t>(s - 1));
  }
  throw Error("zrle: missing end-of-block");
}

}  // namespace ecomp::compress

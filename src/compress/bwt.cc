#include "compress/bwt.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "obs/metrics.h"
#include "util/simd.h"

namespace ecomp::compress {
namespace {

constexpr std::uint32_t kEmpty = 0xffffffffu;

/// SA-IS (Nong-Zhang-Chan induced sorting) over s[0..n) with values
/// < K and an implicit sentinel at position n smaller than every value.
/// Writes the n suffix start positions to sa in increasing suffix order.
/// O(n) time; recursion operates on the reduced LMS string.
template <typename Char>
void sais_core(const Char* s, std::uint32_t* sa, std::size_t n,
               std::uint32_t K) {
  if (n == 0) return;
  if (n == 1) {
    sa[0] = 0;
    return;
  }

  // Suffix types: S if the suffix is smaller than its right neighbour.
  // The last suffix is L (its tail is the sentinel, smaller than s[n-1]).
  std::vector<std::uint8_t> type(n);
  type[n - 1] = 0;
  for (std::size_t i = n - 1; i-- > 0;)
    type[i] = (s[i] < s[i + 1] || (s[i] == s[i + 1] && type[i + 1])) ? 1 : 0;
  const auto is_lms = [&](std::size_t i) {
    return i > 0 && type[i] && !type[i - 1];
  };

  std::vector<std::uint32_t> counts(K, 0), bkt(K);
  for (std::size_t i = 0; i < n; ++i) ++counts[s[i]];
  const auto bucket_starts = [&] {
    std::uint32_t sum = 0;
    for (std::uint32_t c = 0; c < K; ++c) {
      bkt[c] = sum;
      sum += counts[c];
    }
  };
  const auto bucket_ends = [&] {
    std::uint32_t sum = 0;
    for (std::uint32_t c = 0; c < K; ++c) {
      sum += counts[c];
      bkt[c] = sum;
    }
  };

  // Induce L-suffixes left-to-right from sorted LMS seeds, then
  // S-suffixes right-to-left. The virtual sentinel's predecessor n-1
  // leads its bucket's L region.
  const auto induce = [&] {
    bucket_starts();
    sa[bkt[s[n - 1]]++] = static_cast<std::uint32_t>(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t j = sa[i];
      if (j != kEmpty && j > 0 && !type[j - 1]) sa[bkt[s[j - 1]]++] = j - 1;
    }
    bucket_ends();
    for (std::size_t i = n; i-- > 0;) {
      const std::uint32_t j = sa[i];
      if (j != kEmpty && j > 0 && type[j - 1]) sa[--bkt[s[j - 1]]] = j - 1;
    }
  };

  // Stage 1: seed LMS positions at their bucket ends (any order within a
  // bucket sorts the LMS *substrings*), induce once.
  std::fill(sa, sa + n, kEmpty);
  bucket_ends();
  for (std::size_t i = n; i-- > 1;)
    if (is_lms(i)) sa[--bkt[s[i]]] = static_cast<std::uint32_t>(i);
  induce();

  // Compact the sorted LMS positions to the front of sa.
  std::size_t n1 = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (is_lms(sa[i])) sa[n1++] = sa[i];

  // Stage 2: name LMS substrings. Lengths live at sa[n1 + pos/2]
  // (consecutive LMS positions differ by >= 2, so slots are unique and
  // n1 + n/2 <= n). The substring reaching the text end includes the
  // sentinel — its stored length n-pos+1 pushes pos+len past n, which
  // forces "different" below without reading out of bounds.
  std::fill(sa + n1, sa + n, 0);
  {
    std::size_t last = kEmpty;
    for (std::size_t i = 1; i < n; ++i) {
      if (!is_lms(i)) continue;
      if (last != static_cast<std::size_t>(kEmpty))
        sa[n1 + (last >> 1)] = static_cast<std::uint32_t>(i - last + 1);
      last = i;
    }
    if (last != static_cast<std::size_t>(kEmpty))
      sa[n1 + (last >> 1)] = static_cast<std::uint32_t>(n - last + 1);
  }
  std::uint32_t name = 0;
  {
    std::uint32_t q = kEmpty, qlen = 0;
    for (std::size_t i = 0; i < n1; ++i) {
      const std::uint32_t p = sa[i];
      const std::uint32_t plen = sa[n1 + (p >> 1)];
      bool diff = true;
      if (q != kEmpty && plen == qlen && p + plen <= n && q + qlen <= n) {
        std::uint32_t d = 0;
        while (d < plen && s[p + d] == s[q + d]) ++d;
        diff = d < plen;
      }
      if (diff) {
        ++name;
        q = p;
        qlen = plen;
      }
      sa[n1 + (p >> 1)] = name - 1;
    }
  }

  // Reduced problem: names in text order; recurse only if names repeat.
  std::vector<std::uint32_t> s1(n1), sa1(n1), lms(n1);
  {
    std::size_t j = 0;
    for (std::size_t i = 1; i < n; ++i)
      if (is_lms(i)) {
        s1[j] = sa[n1 + (i >> 1)];
        lms[j] = static_cast<std::uint32_t>(i);
        ++j;
      }
  }
  if (name < n1) {
    sais_core<std::uint32_t>(s1.data(), sa1.data(), n1, name);
  } else {
    for (std::size_t i = 0; i < n1; ++i) sa1[s1[i]] = static_cast<std::uint32_t>(i);
  }

  // Stage 3: seed the now fully sorted LMS suffixes and induce the
  // final order.
  std::fill(sa, sa + n, kEmpty);
  bucket_ends();
  for (std::size_t i = n1; i-- > 0;) {
    const std::uint32_t p = lms[sa1[i]];
    sa[--bkt[s[p]]] = p;
  }
  induce();
}

/// Rotation order of a cyclically aperiodic block: all rotations are
/// distinct, so the suffix order of block+block restricted to start
/// positions < n is exactly the rotation order (any two such suffixes
/// differ within their first n characters).
std::vector<std::uint32_t> rotation_order_aperiodic(ByteSpan block) {
  const std::size_t n = block.size();
  std::vector<std::uint8_t> dbl(2 * n);
  std::memcpy(dbl.data(), block.data(), n);
  std::memcpy(dbl.data() + n, block.data(), n);
  std::vector<std::uint32_t> sa2(2 * n);
  sais_core<std::uint8_t>(dbl.data(), sa2.data(), 2 * n, 256);
  std::vector<std::uint32_t> order;
  order.reserve(n);
  for (std::uint32_t p : sa2)
    if (p < n) order.push_back(p);
  return order;
}

/// Smallest linear period via the KMP failure function. The smallest
/// *cyclic* period is this value iff it divides n (and n otherwise): a
/// cyclic period p | n is also a linear period, and the Fine-Wilf
/// argument collapses any p | n, p < n onto a divisor-of-n linear
/// period, so a non-dividing minimal linear period means all rotations
/// are distinct.
std::size_t smallest_period(ByteSpan s) {
  const std::size_t n = s.size();
  std::vector<std::uint32_t> fail(n, 0);
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t k = fail[i - 1];
    while (k > 0 && s[i] != s[k]) k = fail[k - 1];
    if (s[i] == s[k]) ++k;
    fail[i] = static_cast<std::uint32_t>(k);
  }
  return n - fail[n - 1];
}

}  // namespace

std::vector<std::uint32_t> suffix_array(ByteSpan text) {
  std::vector<std::uint32_t> sa(text.size());
  sais_core<std::uint8_t>(text.data(), sa.data(), text.size(), 256);
  return sa;
}

Bytes bwt_forward(ByteSpan block, std::uint32_t& primary) {
  const std::size_t n = block.size();
  ECOMP_COUNT("bwt.block_sorts");
  ECOMP_OBSERVE("bwt.block_bytes", ::ecomp::obs::pow2_bounds(21), n);
  primary = 0;
  if (n == 0) return {};
  if (n == 1) return Bytes(block.begin(), block.end());

  const std::size_t q = smallest_period(block);
  std::vector<std::uint32_t> sa;
  if (q < n && n % q == 0) {
    // Cyclically periodic block: rotations at positions congruent mod q
    // are equal. Sort the aperiodic unit's rotations and expand each
    // class in ascending position order — the tie order the stable
    // prefix-doubling reference produces (and the order `primary`
    // depends on).
    const auto unit = rotation_order_aperiodic(block.first(q));
    sa.reserve(n);
    for (std::uint32_t r : unit)
      for (std::size_t p = r; p < n; p += q)
        sa.push_back(static_cast<std::uint32_t>(p));
  } else {
    sa = rotation_order_aperiodic(block);
  }

  Bytes last(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (sa[i] == 0) primary = static_cast<std::uint32_t>(i);
    last[i] = block[sa[i] == 0 ? n - 1 : sa[i] - 1];
  }
  return last;
}

Bytes bwt_forward_doubling(ByteSpan block, std::uint32_t& primary) {
  const std::size_t n = block.size();
  primary = 0;
  if (n == 0) return {};
  if (n == 1) return Bytes(block.begin(), block.end());

  // Sort cyclic rotations by prefix doubling. rank[i] is the order class
  // of the rotation starting at i considering its first k characters.
  // `rank` is padded to 2n with a copy of itself (rank[n+i] == rank[i])
  // so the cyclic second key rank[(i+k) % n] becomes the branch- and
  // division-free rank[i + kk] with kk = k % n reduced once per round.
  std::vector<std::uint32_t> sa(n), rank(2 * n), new_rank(2 * n), tmp(n), cnt;
  for (std::size_t i = 0; i < n; ++i) {
    sa[i] = static_cast<std::uint32_t>(i);
    rank[i] = block[i];
    rank[n + i] = block[i];
  }

  for (std::size_t k = 1;; k <<= 1) {
    const std::size_t kk = k % n;
    auto rank_at = [&](std::uint32_t i) { return rank[i]; };
    auto second_key = [&](std::uint32_t i) {
      return rank[i + kk];
    };

    // Radix sort sa by (rank[i], rank[i+k]) — two counting-sort passes.
    const std::uint32_t max_rank =
        *std::max_element(rank.begin(), rank.begin() + static_cast<std::ptrdiff_t>(n)) + 1;

    // Pass 1: by second key.
    cnt.assign(max_rank + 1, 0);
    for (std::size_t i = 0; i < n; ++i) ++cnt[second_key(sa[i])];
    for (std::size_t i = 1; i < cnt.size(); ++i) cnt[i] += cnt[i - 1];
    for (std::size_t i = n; i-- > 0;)
      tmp[--cnt[second_key(sa[i])]] = sa[i];
    // Pass 2: by first key (stable, so second-key order is preserved).
    cnt.assign(max_rank + 1, 0);
    for (std::size_t i = 0; i < n; ++i) ++cnt[rank_at(tmp[i])];
    for (std::size_t i = 1; i < cnt.size(); ++i) cnt[i] += cnt[i - 1];
    for (std::size_t i = n; i-- > 0;) sa[--cnt[rank_at(tmp[i])]] = tmp[i];

    // Re-rank (writing both halves keeps the padding invariant).
    new_rank[sa[0]] = 0;
    new_rank[static_cast<std::size_t>(sa[0]) + n] = 0;
    std::uint32_t classes = 1;
    for (std::size_t i = 1; i < n; ++i) {
      const bool same = rank_at(sa[i]) == rank_at(sa[i - 1]) &&
                        second_key(sa[i]) == second_key(sa[i - 1]);
      const std::uint32_t r = same ? classes - 1 : classes++;
      new_rank[sa[i]] = r;
      new_rank[static_cast<std::size_t>(sa[i]) + n] = r;
    }
    rank.swap(new_rank);
    if (classes == n) break;
    if (k >= n) break;  // all rotations compared full-length; ties remain
  }

  Bytes last(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (sa[i] == 0) primary = static_cast<std::uint32_t>(i);
    last[i] = block[sa[i] == 0 ? n - 1 : sa[i] - 1];
  }
  return last;
}

Bytes bwt_inverse(ByteSpan last_column, std::uint32_t primary) {
  const std::size_t n = last_column.size();
  if (n == 0) return {};
  if (primary >= n) throw Error("bwt: primary index out of range");

  // lf[i]: row of the rotation obtained by rotating row i right by one.
  std::vector<std::uint32_t> starts(256, 0);
  for (std::uint8_t c : last_column) ++starts[c];
  std::uint32_t sum = 0;
  for (int c = 0; c < 256; ++c) {
    const std::uint32_t cc = starts[c];
    starts[c] = sum;
    sum += cc;
  }
  if (n < (std::size_t{1} << 24)) {
    // Pack lf[i] (low 24 bits) with last_column[i] (high 8) so the
    // latency-bound backward walk issues one dependent load per output
    // byte instead of two. Codec blocks cap at 900 KB, so this path
    // always applies there; the unpacked walk below keeps larger
    // callers correct.
    constexpr std::uint32_t kIdx = 0x00ffffffu;
    Bytes out(n);
    if (n < (std::size_t{1} << 16)) {
      std::vector<std::uint32_t> tt(n);
      for (std::size_t i = 0; i < n; ++i)
        tt[i] = starts[last_column[i]]++ |
                (std::uint32_t{last_column[i]} << 24);
      std::uint32_t p = primary;
      for (std::size_t k = n; k-- > 0;) {
        const std::uint32_t v = tt[p];
        out[k] = static_cast<std::uint8_t>(v >> 24);
        p = v & kIdx;
      }
      return out;
    }
    // Large blocks: the walk is a single dependent-load chain, so its
    // cost is n * cache-miss latency no matter how cheap each step is.
    // Shorten the chain 8x by repeatedly squaring the step table: t2/t4
    // pack the index 2/4 steps ahead with the bytes the serial walk
    // would emit along the way, and the final t8 level splits into an
    // index array and a 64-bit emit word so the walk issues one
    // dependent load per EIGHT output bytes. The squaring passes are
    // independent random loads, which the CPU overlaps many at a time —
    // unlike the walk's serial chain — so together they cost far less
    // than the latency they remove. Each t8 entry just replays eight
    // exact serial steps, so the output is byte-for-byte identical and
    // cycle structure (periodic blocks) never matters.
    //
    // The tables are reused across calls (thread-local, grown to the
    // largest small-enough block this thread has inverted) so steady
    // per-block decode pays no allocation or page-fault cost; codec
    // blocks cap at 900 KB, well under the reuse bound.
    struct Scratch {
      std::vector<std::uint32_t> idx;   // t1, then reused as t8 index
      std::vector<std::uint64_t> even;  // t2, then reused as t8 word
      std::vector<std::uint64_t> quad;  // t4
    };
    constexpr std::size_t kScratchMax = std::size_t{1} << 20;
    thread_local Scratch scratch;
    Scratch local;
    Scratch& s = n <= kScratchMax ? scratch : local;
    if (s.idx.size() < n) {
      s.idx.resize(n);
      s.even.resize(n);
      s.quad.resize(n);
    }
    std::uint32_t* const t1 = s.idx.data();
    std::uint64_t* const t2 = s.even.data();
    std::uint64_t* const t4 = s.quad.data();
    for (std::size_t i = 0; i < n; ++i)
      t1[i] = starts[last_column[i]]++ |
              (std::uint32_t{last_column[i]} << 24);
    std::uint32_t p = primary;
    std::size_t k = n;
    for (std::size_t r = n & 7; r-- > 0;) {
      const std::uint32_t v = t1[p];
      out[--k] = static_cast<std::uint8_t>(v >> 24);
      p = v & kIdx;
    }
    // t2[i]: index two steps ahead | (the two emitted bytes) << 32,
    // bytes ordered so concatenating entries' byte halves yields the
    // final store word directly (later-emitted byte in the lower lane).
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t v0 = t1[i];
      const std::uint32_t v1 = t1[v0 & kIdx];
      t2[i] = (v1 & kIdx) |
              (std::uint64_t{(v1 >> 24) | ((v0 >> 24) << 8)} << 32);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t u0 = t2[i];
      const std::uint64_t u1 = t2[u0 & kIdx];
      t4[i] = (u1 & kIdx) |
              (((u1 >> 32) | ((u0 >> 32) << 16)) << 32);
    }
    // Final level in two arrays: t1 (no longer needed) takes the 8-step
    // index, t2 takes the 8-byte emit word.
    std::uint32_t* const t8i = t1;
    std::uint64_t* const t8w = t2;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t q0 = t4[i];
      const std::uint64_t q1 = t4[q0 & kIdx];
      t8i[i] = static_cast<std::uint32_t>(q1 & kIdx);
      t8w[i] = (q1 >> 32) | ((q0 >> 32) << 32);
    }
    while (k > 0) {
      const std::uint64_t w = t8w[p];
      const std::uint32_t next = t8i[p];
      k -= 8;
      out[k] = static_cast<std::uint8_t>(w);
      out[k + 1] = static_cast<std::uint8_t>(w >> 8);
      out[k + 2] = static_cast<std::uint8_t>(w >> 16);
      out[k + 3] = static_cast<std::uint8_t>(w >> 24);
      out[k + 4] = static_cast<std::uint8_t>(w >> 32);
      out[k + 5] = static_cast<std::uint8_t>(w >> 40);
      out[k + 6] = static_cast<std::uint8_t>(w >> 48);
      out[k + 7] = static_cast<std::uint8_t>(w >> 56);
      p = next;
    }
    return out;
  }

  std::vector<std::uint32_t> lf(n);
  for (std::size_t i = 0; i < n; ++i) lf[i] = starts[last_column[i]]++;

  Bytes out(n);
  std::uint32_t p = primary;
  for (std::size_t k = n; k-- > 0;) {
    out[k] = last_column[p];
    p = lf[p];
  }
  return out;
}

Bytes rle1_encode(ByteSpan input) {
  Bytes out;
  out.reserve(input.size());
  std::size_t i = 0;
  while (i < input.size()) {
    const std::uint8_t b = input[i];
    std::size_t run = 1;
    while (i + run < input.size() && input[i + run] == b && run < 259) ++run;
    if (run >= 4) {
      out.insert(out.end(), 4, b);
      out.push_back(static_cast<std::uint8_t>(run - 4));
    } else {
      out.insert(out.end(), run, b);
    }
    i += run;
  }
  return out;
}

Bytes rle1_decode(ByteSpan input) {
  Bytes out;
  out.reserve(input.size());
  std::size_t i = 0;
  while (i < input.size()) {
    const std::uint8_t b = input[i];
    std::size_t run = 1;
    while (run < 4 && i + run < input.size() && input[i + run] == b) ++run;
    out.insert(out.end(), run, b);
    i += run;
    if (run == 4) {
      if (i >= input.size()) throw Error("rle1: truncated run count");
      out.insert(out.end(), input[i], b);
      ++i;
    }
  }
  return out;
}

Bytes mtf_encode(ByteSpan input) {
  std::uint8_t order[256];
  for (int i = 0; i < 256; ++i) order[i] = static_cast<std::uint8_t>(i);
  Bytes out;
  out.reserve(input.size());
  // Rank scan via the dispatched find-byte kernel (order is a
  // permutation, so the first hit is the rank); the move-to-front shift
  // is a single overlapping memmove. BWT output is run-heavy, so the
  // rank-0 fast path covers most bytes.
  const simd::FindByteFn find_byte = simd::find_byte_fn();
  for (std::uint8_t b : input) {
    if (order[0] == b) {
      out.push_back(0);
      continue;
    }
    const int idx = find_byte(order, 256, b);
    out.push_back(static_cast<std::uint8_t>(idx));
    std::memmove(order + 1, order, static_cast<std::size_t>(idx));
    order[0] = b;
  }
  return out;
}

Bytes mtf_decode(ByteSpan input) {
  std::uint8_t order[256];
  for (int i = 0; i < 256; ++i) order[i] = static_cast<std::uint8_t>(i);
  Bytes out;
  out.reserve(input.size());
  for (std::uint8_t idx : input) {
    const std::uint8_t b = order[idx];
    out.push_back(b);
    std::memmove(order + 1, order, idx);
    order[0] = b;
  }
  return out;
}

std::vector<std::uint16_t> zrle_encode(ByteSpan mtf) {
  std::vector<std::uint16_t> out;
  out.reserve(mtf.size() / 2 + 16);
  std::size_t i = 0;
  auto flush_run = [&](std::uint64_t r) {
    // Bijective base-2: digits RUNA (value 1) and RUNB (value 2) at
    // positional weight 2^k.
    while (r > 0) {
      if (r & 1) {
        out.push_back(kZrleRunA);
        r = (r - 1) >> 1;
      } else {
        out.push_back(kZrleRunB);
        r = (r - 2) >> 1;
      }
    }
  };
  while (i < mtf.size()) {
    if (mtf[i] == 0) {
      std::uint64_t run = 0;
      while (i < mtf.size() && mtf[i] == 0) {
        ++run;
        ++i;
      }
      flush_run(run);
    } else {
      out.push_back(static_cast<std::uint16_t>(mtf[i] + 1));
      ++i;
    }
  }
  out.push_back(kZrleEob);
  return out;
}

Bytes zrle_decode(const std::vector<std::uint16_t>& syms) {
  Bytes out;
  std::uint64_t run = 0;
  std::uint64_t place = 1;
  auto flush_run = [&] {
    if (run > 0) {
      out.insert(out.end(), run, 0);
      run = 0;
    }
    place = 1;
  };
  for (std::uint16_t s : syms) {
    if (s == kZrleRunA || s == kZrleRunB) {
      run += place * (s == kZrleRunA ? 1 : 2);
      place <<= 1;
      continue;
    }
    flush_run();
    if (s == kZrleEob) return out;
    if (s > 256) throw Error("zrle: bad symbol");
    out.push_back(static_cast<std::uint8_t>(s - 1));
  }
  throw Error("zrle: missing end-of-block");
}

}  // namespace ecomp::compress

#include "compress/bwt_codec.h"

#include <algorithm>

#include "compress/bwt.h"
#include "compress/container.h"
#include "compress/huffman.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prof/zone.h"
#include "util/bitio.h"
#include "util/crc32.h"

namespace ecomp::compress {
namespace {

constexpr int kMaxCodeLen = 20;
constexpr int kLenFieldBits = 5;   // serialized code-length width
constexpr std::size_t kGroupSize = 50;  // symbols per selector group
constexpr int kMaxTables = 6;
constexpr int kTableCountBits = 3;
constexpr int kRefinePasses = 3;

/// bzip2-style multi-table entropy coding: the symbol stream is cut into
/// groups of 50; each group is coded with one of up to six Huffman
/// tables, chosen per group (heterogeneous regions of the block get
/// specialized tables). Tables are refined by a few k-means-like passes.
int table_count_for(std::size_t n_syms) {
  // Roughly 40 selector groups per table before an extra table's header
  // pays for itself.
  const std::size_t groups = (n_syms + kGroupSize - 1) / kGroupSize;
  return std::clamp(static_cast<int>(groups / 40), 1, kMaxTables);
}

int selector_bits_for(int n_tables) {
  int bits = 0;
  while ((1 << bits) < n_tables) ++bits;
  return bits;
}

/// Code lengths over the block's in-use alphabet only: every used
/// symbol gets frequency >= 1 so any table can code any group, and
/// unused symbols get no code (and no header bits).
std::vector<std::uint8_t> lengths_for(const std::vector<std::uint64_t>& freqs,
                                      const std::vector<bool>& used) {
  std::vector<std::uint64_t> f = freqs;
  for (std::size_t s = 0; s < f.size(); ++s)
    if (used[s]) ++f[s];
  return huffman::build_code_lengths(f, kMaxCodeLen);
}

Bytes encode_block(ByteSpan block, int max_tables) {
  // Stage zones follow the pipeline: sort transform, MTF+ZRLE, then
  // everything from table seeding through emission as huffman.encode.
  std::uint32_t primary = 0;
  Bytes last;
  {
    ECOMP_PROF_ZONE("bwt.forward");
    last = bwt_forward(block, primary);
  }
  Bytes mtf;
  {
    ECOMP_PROF_ZONE("mtf");
    mtf = mtf_encode(last);
  }
  const auto syms = zrle_encode(mtf);
  ECOMP_PROF_ZONE("huffman.encode");

  const int n_tables = std::min(table_count_for(syms.size()), max_tables);
  const std::size_t n_groups = (syms.size() + kGroupSize - 1) / kGroupSize;

  std::vector<std::uint64_t> freq(kZrleAlphabet, 0);
  for (auto s : syms) ++freq[s];
  std::vector<bool> used(kZrleAlphabet, false);
  for (auto s : syms) used[s] = true;

  // Initial assignment: split the symbol stream's frequency mass into
  // contiguous alphabet ranges, one table per range (bzip2's seeding).
  std::vector<std::vector<std::uint8_t>> table_lengths(
      static_cast<std::size_t>(n_tables));
  {
    std::uint64_t total = syms.size();
    std::size_t lo = 0;
    for (int t = 0; t < n_tables; ++t) {
      const std::uint64_t want = total / static_cast<std::uint64_t>(
                                             n_tables - t);
      std::uint64_t got = 0;
      std::size_t hi = lo;
      while (hi < kZrleAlphabet && (got < want || hi == lo))
        got += freq[hi++];
      if (t == n_tables - 1) hi = kZrleAlphabet;
      // Seed table t to favour symbols in [lo, hi).
      std::vector<std::uint64_t> f(kZrleAlphabet, 0);
      for (std::size_t s = lo; s < hi; ++s) f[s] = freq[s];
      table_lengths[static_cast<std::size_t>(t)] = lengths_for(f, used);
      total -= got;
      lo = hi;
    }
  }

  // Refinement: assign each group to its cheapest table, then rebuild
  // each table from the groups it won.
  std::vector<std::uint8_t> selectors(n_groups, 0);
  for (int pass = 0; pass < kRefinePasses; ++pass) {
    std::vector<std::vector<std::uint64_t>> table_freq(
        static_cast<std::size_t>(n_tables),
        std::vector<std::uint64_t>(kZrleAlphabet, 0));
    for (std::size_t g = 0; g < n_groups; ++g) {
      const std::size_t begin = g * kGroupSize;
      const std::size_t end = std::min(begin + kGroupSize, syms.size());
      int best = 0;
      std::uint64_t best_cost = ~std::uint64_t{0};
      for (int t = 0; t < n_tables; ++t) {
        std::uint64_t cost = 0;
        for (std::size_t i = begin; i < end; ++i)
          cost += table_lengths[static_cast<std::size_t>(t)][syms[i]];
        if (cost < best_cost) {
          best_cost = cost;
          best = t;
        }
      }
      selectors[g] = static_cast<std::uint8_t>(best);
      for (std::size_t i = begin; i < end; ++i)
        ++table_freq[static_cast<std::size_t>(best)][syms[i]];
    }
    for (int t = 0; t < n_tables; ++t)
      table_lengths[static_cast<std::size_t>(t)] =
          lengths_for(table_freq[static_cast<std::size_t>(t)], used);
  }

  BitWriterMsb bw;
  bw.put(static_cast<std::uint32_t>(n_tables), kTableCountBits);
  // Usage bitmap once per block; table headers cover used symbols only.
  for (std::size_t s = 0; s < kZrleAlphabet; ++s)
    bw.put(used[s] ? 1 : 0, 1);
  for (const auto& lengths : table_lengths)
    for (std::size_t s = 0; s < kZrleAlphabet; ++s)
      if (used[s]) bw.put(lengths[s], kLenFieldBits);
  std::vector<huffman::EncoderMsb> encoders;
  encoders.reserve(table_lengths.size());
  for (const auto& lengths : table_lengths) encoders.emplace_back(lengths);

  const int sel_bits = selector_bits_for(n_tables);
  for (std::size_t g = 0; g < n_groups; ++g) {
    if (sel_bits) bw.put(selectors[g], sel_bits);
    const auto& enc = encoders[selectors[g]];
    const std::size_t begin = g * kGroupSize;
    const std::size_t end = std::min(begin + kGroupSize, syms.size());
    for (std::size_t i = begin; i < end; ++i) enc.encode(bw, syms[i]);
  }
  Bytes payload = bw.take();

  Bytes out;
  put_varint(out, block.size());
  put_varint(out, primary);
  put_varint(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Bytes decode_block(ByteSpan in, std::size_t& pos) {
  const std::uint64_t block_size = get_varint(in, pos);
  const std::uint64_t primary = get_varint(in, pos);
  const std::uint64_t payload_size = get_varint(in, pos);
  if (pos + payload_size > in.size()) throw Error("bwt: truncated block");
  BitReaderMsb br(in.subspan(pos, payload_size));
  pos += payload_size;

  const int n_tables = static_cast<int>(br.get(kTableCountBits));
  if (n_tables < 1 || n_tables > kMaxTables)
    throw Error("bwt: bad table count");
  std::vector<bool> used(kZrleAlphabet, false);
  for (std::size_t s = 0; s < kZrleAlphabet; ++s) used[s] = br.get(1) != 0;
  std::vector<huffman::DecoderMsb> decoders;
  decoders.reserve(static_cast<std::size_t>(n_tables));
  for (int t = 0; t < n_tables; ++t) {
    std::vector<std::uint8_t> lengths(kZrleAlphabet, 0);
    for (std::size_t s = 0; s < kZrleAlphabet; ++s)
      if (used[s])
        lengths[s] = static_cast<std::uint8_t>(br.get(kLenFieldBits));
    decoders.emplace_back(lengths);
  }
  const int sel_bits = selector_bits_for(n_tables);

  std::vector<std::uint16_t> syms;
  syms.reserve(block_size / 2 + 16);
  {
    ECOMP_PROF_ZONE("huffman.decode");
    bool done = false;
    while (!done) {
      std::uint32_t sel = sel_bits ? br.get(sel_bits) : 0;
      if (sel >= static_cast<std::uint32_t>(n_tables))
        throw Error("bwt: bad selector");
      const auto& dec = decoders[sel];
      for (std::size_t i = 0; i < kGroupSize; ++i) {
        const std::uint32_t s = dec.decode(br);
        syms.push_back(static_cast<std::uint16_t>(s));
        if (s == kZrleEob) {
          done = true;
          break;
        }
      }
    }
  }
  Bytes mtf, last;
  {
    ECOMP_PROF_ZONE("mtf");
    mtf = zrle_decode(syms);
    last = mtf_decode(mtf);
  }
  if (last.size() != block_size) throw Error("bwt: block size mismatch");
  ECOMP_PROF_ZONE("bwt.inverse");
  return bwt_inverse(last, static_cast<std::uint32_t>(primary));
}

}  // namespace

BwtCodec::BwtCodec(int level, int max_tables)
    : block_size_(static_cast<std::size_t>(std::clamp(level, 1, 9)) *
                  100'000),
      max_tables_(std::clamp(max_tables, 1, kMaxTables)) {}

Bytes BwtCodec::compress(ByteSpan input) const {
  ECOMP_TRACE_SPAN("bwt.compress", "codec");
  ECOMP_COUNT_N("bwt.bytes_in", input.size());
  Bytes out;
  std::uint32_t crc;
  {
    ECOMP_PROF_ZONE("crc32");
    crc = crc32(input);
  }
  write_header(out, kBwtMagic, input.size(), crc);
  const Bytes rle = rle1_encode(input);
  put_varint(out, rle.size());

  std::size_t off = 0;
  std::size_t nblocks = 0;
  while (off < rle.size()) {
    const std::size_t len = std::min(block_size_, rle.size() - off);
    ++nblocks;
    off += len;
  }
  put_varint(out, nblocks);
  off = 0;
  while (off < rle.size()) {
    const std::size_t len = std::min(block_size_, rle.size() - off);
    const Bytes blk =
        encode_block(ByteSpan(rle).subspan(off, len), max_tables_);
    out.insert(out.end(), blk.begin(), blk.end());
    off += len;
  }
  ECOMP_COUNT_N("bwt.bytes_out", out.size());
  return out;
}

Bytes BwtCodec::decompress(ByteSpan input) const {
  ECOMP_TRACE_SPAN("bwt.decompress", "codec");
  const Header h = read_header(input, kBwtMagic);
  std::size_t pos = h.payload_offset;
  const std::uint64_t rle_size = get_varint(input, pos);
  const std::uint64_t nblocks = get_varint(input, pos);
  Bytes rle;
  rle.reserve(rle_size);
  for (std::uint64_t b = 0; b < nblocks; ++b) {
    const Bytes blk = decode_block(input, pos);
    rle.insert(rle.end(), blk.begin(), blk.end());
  }
  if (rle.size() != rle_size) throw Error("bwt: stream size mismatch");
  Bytes out = rle1_decode(rle);
  {
    ECOMP_PROF_ZONE("crc32");
    check_crc(h, out);
  }
  return out;
}

}  // namespace ecomp::compress

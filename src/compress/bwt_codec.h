// bzip2-style block-sorting codec: RLE1 | per block: BWT + MTF + zero-run
// coding + canonical Huffman (MSB-first). The repo's stand-in for
// bzip2 1.0.1.
#pragma once

#include <cstdint>

#include "compress/codec.h"

namespace ecomp::compress {

inline constexpr std::uint16_t kBwtMagic = 0xE003;

class BwtCodec final : public Codec {
 public:
  /// level 1..9 selects the sort block size (level × 100 KB, as bzip2's
  /// -1..-9 do). The paper runs bzip2 -9 → 900 KB blocks. max_tables
  /// caps the bzip2-style multi-table entropy stage (1 = single Huffman
  /// table; 6 = bzip2's maximum); the codec picks the count per block
  /// from the symbol volume, up to this cap.
  explicit BwtCodec(int level = 9, int max_tables = 6);

  std::string_view name() const override { return "bwt"; }
  Bytes compress(ByteSpan input) const override;
  Bytes decompress(ByteSpan input) const override;

  std::size_t block_size() const { return block_size_; }
  int max_tables() const { return max_tables_; }

 private:
  std::size_t block_size_;
  int max_tables_;
};

}  // namespace ecomp::compress

// Canonical, length-limited Huffman coding.
//
// Shared by the DEFLATE codec (LSB-first, 15-bit limit, RFC 1951 bit
// reversal) and the BWT pipeline's entropy stage (MSB-first). Only code
// *lengths* are ever serialized; codes are reconstructed canonically.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitio.h"
#include "util/bytes.h"

namespace ecomp::huffman {

/// Compute length-limited Huffman code lengths for `freqs`.
/// Symbols with zero frequency get length 0 (no code). If only one
/// symbol has nonzero frequency it is assigned length 1. Lengths never
/// exceed `max_len`; when the optimal tree is deeper, lengths are
/// adjusted (zlib-style overflow fixup) while keeping the Kraft sum
/// exactly 1.
std::vector<std::uint8_t> build_code_lengths(
    const std::vector<std::uint64_t>& freqs, int max_len);

/// Canonical code assignment: for each symbol with length > 0, the
/// numeric code value (MSB-first convention, as in RFC 1951 §3.2.2).
/// Throws Error if the lengths oversubscribe the code space.
std::vector<std::uint32_t> canonical_codes(
    const std::vector<std::uint8_t>& lengths);

/// Reverse the low `len` bits of `code` (DEFLATE stores Huffman codes
/// LSB-first, so canonical MSB codes must be bit-reversed on emit).
std::uint32_t reverse_bits(std::uint32_t code, int len);

/// Encoder: canonical codes pre-reversed for an LSB-first bit writer.
class EncoderLsb {
 public:
  explicit EncoderLsb(const std::vector<std::uint8_t>& lengths);
  void encode(BitWriterLsb& out, std::uint32_t symbol) const;
  std::uint8_t length(std::uint32_t symbol) const {
    return lengths_[symbol];
  }

 private:
  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> codes_;  // bit-reversed
};

/// Flat chained decode tables shared by both bit orders.
///
/// One contiguous arena of packed 32-bit entries: a root table of
/// `1 << root_bits` slots (root_bits = min(max code length, 12)) with
/// chained subtables of at most 8 index bits per level for longer
/// codes, zlib/libdeflate-style. Entry layout:
///   0                      — invalid slot (no code has this prefix)
///   (len << 16) | symbol   — direct hit; consume `len` more bits
///   0x80000000 | (child_bits << 24) | child_offset
///                          — link; consume this level's bits, index the
///                            subtable at `child_offset` with the next
///                            `child_bits` bits
/// Chaining bounds table memory even for the BWT stream's 5-bit length
/// fields (codes up to 31 bits) while keeping the common case a single
/// peek + lookup + skip.
struct FlatTable {
  /// Build from canonical codes. `msb` picks the bit-chunk convention:
  /// false = LSB-first (codes must already be bit-reversed), true =
  /// MSB-first canonical codes.
  void build(const std::vector<std::uint8_t>& lengths,
             const std::vector<std::uint32_t>& codes, bool msb);

  static constexpr std::uint32_t kLinkFlag = 0x80000000u;
  static constexpr int kRootBits = 12;
  static constexpr int kMaxSubBits = 8;

  std::vector<std::uint32_t> arena;  // root table first, subtables after
  int root_bits = 0;
};

/// Decoder for canonical codes from an LSB-first bit reader.
/// Flat-table: one peek/lookup/skip for codes up to 12 bits, chained
/// subtable lookups beyond. `decode_walk` keeps the original canonical
/// bit-by-bit walk as a differential-test reference.
class DecoderLsb {
 public:
  explicit DecoderLsb(const std::vector<std::uint8_t>& lengths);
  std::uint32_t decode(BitReaderLsb& in) const;
  /// Reference decoder: canonical walk, one bit at a time. Semantically
  /// identical to decode(); used by differential tests.
  std::uint32_t decode_walk(BitReaderLsb& in) const;
  int max_length() const { return max_len_; }

 private:
  FlatTable flat_;
  std::vector<std::uint32_t> first_code_;    // per length (MSB convention)
  std::vector<std::uint32_t> first_index_;   // per length, into sorted_
  std::vector<std::uint16_t> sorted_;        // symbols sorted by (len, sym)
  int max_len_ = 0;
};

/// Encoder/decoder pair for MSB-first streams (BWT pipeline).
class EncoderMsb {
 public:
  explicit EncoderMsb(const std::vector<std::uint8_t>& lengths);
  void encode(BitWriterMsb& out, std::uint32_t symbol) const;

 private:
  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> codes_;
};

class DecoderMsb {
 public:
  explicit DecoderMsb(const std::vector<std::uint8_t>& lengths);
  std::uint32_t decode(BitReaderMsb& in) const;
  /// Reference decoder: canonical walk from min length, one bit at a
  /// time. Semantically identical to decode(); used by differential
  /// tests.
  std::uint32_t decode_walk(BitReaderMsb& in) const;

 private:
  FlatTable flat_;
  std::vector<std::uint32_t> first_code_;
  std::vector<std::uint32_t> first_index_;
  std::vector<std::uint16_t> sorted_;
  int max_len_ = 0;
  int min_len_ = 0;
};

}  // namespace ecomp::huffman

// Canonical, length-limited Huffman coding.
//
// Shared by the DEFLATE codec (LSB-first, 15-bit limit, RFC 1951 bit
// reversal) and the BWT pipeline's entropy stage (MSB-first). Only code
// *lengths* are ever serialized; codes are reconstructed canonically.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitio.h"
#include "util/bytes.h"

namespace ecomp::huffman {

/// Compute length-limited Huffman code lengths for `freqs`.
/// Symbols with zero frequency get length 0 (no code). If only one
/// symbol has nonzero frequency it is assigned length 1. Lengths never
/// exceed `max_len`; when the optimal tree is deeper, lengths are
/// adjusted (zlib-style overflow fixup) while keeping the Kraft sum
/// exactly 1.
std::vector<std::uint8_t> build_code_lengths(
    const std::vector<std::uint64_t>& freqs, int max_len);

/// Canonical code assignment: for each symbol with length > 0, the
/// numeric code value (MSB-first convention, as in RFC 1951 §3.2.2).
/// Throws Error if the lengths oversubscribe the code space.
std::vector<std::uint32_t> canonical_codes(
    const std::vector<std::uint8_t>& lengths);

/// Reverse the low `len` bits of `code` (DEFLATE stores Huffman codes
/// LSB-first, so canonical MSB codes must be bit-reversed on emit).
std::uint32_t reverse_bits(std::uint32_t code, int len);

/// Encoder: canonical codes pre-reversed for an LSB-first bit writer.
class EncoderLsb {
 public:
  explicit EncoderLsb(const std::vector<std::uint8_t>& lengths);
  void encode(BitWriterLsb& out, std::uint32_t symbol) const;
  std::uint8_t length(std::uint32_t symbol) const {
    return lengths_[symbol];
  }

 private:
  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> codes_;  // bit-reversed
};

/// Decoder for canonical codes from an LSB-first bit reader.
/// Table-driven: single lookup for codes up to `root_bits`, canonical
/// walk beyond.
class DecoderLsb {
 public:
  explicit DecoderLsb(const std::vector<std::uint8_t>& lengths);
  std::uint32_t decode(BitReaderLsb& in) const;
  int max_length() const { return max_len_; }

 private:
  static constexpr int kRootBits = 10;
  struct Entry {
    std::uint16_t symbol = 0;
    std::uint8_t length = 0;  // 0 = invalid / needs slow path
  };
  std::vector<Entry> table_;                 // 1 << min(kRootBits, max_len_)
  std::vector<std::uint32_t> first_code_;    // per length (MSB convention)
  std::vector<std::uint32_t> first_index_;   // per length, into sorted_
  std::vector<std::uint16_t> sorted_;        // symbols sorted by (len, sym)
  int max_len_ = 0;
  int root_bits_ = 0;
};

/// Encoder/decoder pair for MSB-first streams (BWT pipeline).
class EncoderMsb {
 public:
  explicit EncoderMsb(const std::vector<std::uint8_t>& lengths);
  void encode(BitWriterMsb& out, std::uint32_t symbol) const;

 private:
  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> codes_;
};

class DecoderMsb {
 public:
  explicit DecoderMsb(const std::vector<std::uint8_t>& lengths);
  std::uint32_t decode(BitReaderMsb& in) const;

 private:
  std::vector<std::uint32_t> first_code_;
  std::vector<std::uint32_t> first_index_;
  std::vector<std::uint16_t> sorted_;
  int max_len_ = 0;
  int min_len_ = 0;
};

}  // namespace ecomp::huffman

#include "compress/gzip_format.h"

#include "compress/deflate.h"
#include "util/bitio.h"
#include "util/crc32.h"

namespace ecomp::compress {
namespace {

constexpr std::uint8_t kId1 = 0x1f;
constexpr std::uint8_t kId2 = 0x8b;
constexpr std::uint8_t kCmDeflate = 8;

// FLG bits (RFC 1952 §2.3.1).
constexpr std::uint8_t kFtext = 0x01;
constexpr std::uint8_t kFhcrc = 0x02;
constexpr std::uint8_t kFextra = 0x04;
constexpr std::uint8_t kFname = 0x08;
constexpr std::uint8_t kFcomment = 0x10;

void put_le32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_le32(ByteSpan in, std::size_t pos) {
  if (pos + 4 > in.size()) throw Error("gzip: truncated trailer");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(in[pos + i]) << (8 * i);
  return v;
}

}  // namespace

bool looks_like_gzip(ByteSpan data) {
  return data.size() >= 2 && data[0] == kId1 && data[1] == kId2;
}

Bytes gzip_compress(ByteSpan input, int level) {
  Bytes out;
  out.push_back(kId1);
  out.push_back(kId2);
  out.push_back(kCmDeflate);
  out.push_back(0);                      // FLG: no optional fields
  for (int i = 0; i < 4; ++i) out.push_back(0);  // MTIME: unset
  out.push_back(level >= 9 ? 2 : (level <= 1 ? 4 : 0));  // XFL hint
  out.push_back(255);                    // OS: unknown

  BitWriterLsb bw;
  deflate_raw(input, Lz77Params::for_level(level), bw);
  const Bytes payload = bw.take();
  out.insert(out.end(), payload.begin(), payload.end());

  put_le32(out, crc32(input));
  put_le32(out, static_cast<std::uint32_t>(input.size() & 0xffffffffu));
  return out;
}

Bytes gzip_decompress(ByteSpan input) {
  if (input.size() < 2 || !looks_like_gzip(input))
    throw Error("gzip: bad magic");
  if (input.size() < 10) throw Error("gzip: truncated header");
  if (input[2] != kCmDeflate) throw Error("gzip: unsupported method");
  const std::uint8_t flg = input[3];
  if (flg & 0xe0) throw Error("gzip: reserved FLG bits set");
  std::size_t pos = 10;  // fixed header

  if (flg & kFextra) {
    if (pos + 2 > input.size()) throw Error("gzip: truncated FEXTRA");
    const std::size_t xlen = input[pos] | (input[pos + 1] << 8);
    pos += 2 + xlen;
    if (pos > input.size()) throw Error("gzip: truncated FEXTRA data");
  }
  for (const std::uint8_t field : {kFname, kFcomment}) {
    if (!(flg & field)) continue;
    while (true) {
      if (pos >= input.size()) throw Error("gzip: unterminated string");
      if (input[pos++] == 0) break;
    }
  }
  if (flg & kFhcrc) {
    pos += 2;
    if (pos > input.size()) throw Error("gzip: truncated FHCRC");
  }
  (void)kFtext;  // informational only

  if (input.size() < pos + 8) throw Error("gzip: missing trailer");
  BitReaderLsb br(input.subspan(pos, input.size() - pos - 8));
  const Bytes out = inflate_raw(br);

  const std::uint32_t want_crc = get_le32(input, input.size() - 8);
  const std::uint32_t want_isize = get_le32(input, input.size() - 4);
  if (crc32(out) != want_crc) throw Error("gzip: CRC mismatch");
  if (static_cast<std::uint32_t>(out.size() & 0xffffffffu) != want_isize)
    throw Error("gzip: ISIZE mismatch");
  return out;
}

}  // namespace ecomp::compress

#include "compress/container.h"

#include "util/crc32.h"

namespace ecomp::compress {

void put_le(Bytes& out, std::uint64_t v, int n) {
  for (int i = 0; i < n; ++i) {
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

std::uint64_t get_le(ByteSpan in, std::size_t& pos, int n) {
  if (pos + static_cast<std::size_t>(n) > in.size())
    throw Error("container: truncated integer");
  std::uint64_t v = 0;
  for (int i = 0; i < n; ++i) v |= std::uint64_t{in[pos + i]} << (8 * i);
  pos += static_cast<std::size_t>(n);
  return v;
}

void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(ByteSpan in, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos >= in.size()) throw Error("container: truncated varint");
    if (shift >= 64) throw Error("container: varint overflow");
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return v;
}

void write_header(Bytes& out, std::uint16_t magic, std::uint64_t orig_size,
                  std::uint32_t crc) {
  put_le(out, magic, 2);
  put_varint(out, orig_size);
  put_le(out, crc, 4);
}

Header read_header(ByteSpan in, std::uint16_t magic) {
  std::size_t pos = 0;
  const auto got = static_cast<std::uint16_t>(get_le(in, pos, 2));
  if (got != magic) throw Error("container: bad magic (wrong codec?)");
  Header h;
  h.original_size = get_varint(in, pos);
  h.crc = static_cast<std::uint32_t>(get_le(in, pos, 4));
  h.payload_offset = pos;
  return h;
}

void check_crc(const Header& h, ByteSpan decoded) {
  if (decoded.size() != h.original_size)
    throw Error("container: decoded size mismatch");
  if (crc32(decoded) != h.crc) throw Error("container: CRC mismatch");
}

}  // namespace ecomp::compress

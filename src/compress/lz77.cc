#include "compress/lz77.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#include "obs/metrics.h"
#include "prof/alloc.h"
#include "prof/zone.h"
#include "util/simd.h"

namespace ecomp::compress {

Lz77Params Lz77Params::for_level(int level) {
  // Mirrors zlib's configuration_table.
  switch (std::clamp(level, 1, 9)) {
    case 1: return {4, 4, 8, 4, false};
    case 2: return {4, 5, 16, 8, false};
    case 3: return {4, 6, 32, 32, false};
    case 4: return {4, 4, 16, 16, true};
    case 5: return {8, 16, 32, 32, true};
    case 6: return {8, 16, 128, 128, true};
    case 7: return {8, 32, 128, 256, true};
    case 8: return {32, 128, 258, 1024, true};
    default: return {32, 258, 258, 4096, true};
  }
}

namespace {

constexpr int kHashBits = 15;
constexpr std::uint32_t kHashSize = 1u << kHashBits;

inline std::uint32_t hash3(const std::uint8_t* p) {
  // Multiplicative hash of 3 bytes.
  const std::uint32_t v =
      std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
      (std::uint32_t{p[2]} << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Bucket count for the probes-per-find histogram (pow2 bounds 1..2^11,
// matching the largest max_chain of 4096 within two buckets).
constexpr int kChainHistBuckets = 12;

/// Reusable hash-chain arenas. One instance lives per thread (see
/// tokenize_scratch()) so block-by-block callers — selective_compress,
/// SelectiveStreamEncoder, the pool workers of the parallel pipeline —
/// pay the 32 K-entry head reset instead of a fresh allocation per
/// block. `prev` is never cleared: every entry read during a chain walk
/// was written by insert() in the same tokenize call (head only ever
/// points at freshly inserted positions), so stale values from an
/// earlier block are unreachable and the output stays deterministic.
struct MatcherScratch {
  std::vector<std::int32_t> head;  // hash -> most recent position
  std::vector<std::int32_t> prev;  // position -> previous with same hash

  void prepare(std::size_t input_size) {
    if (head.empty()) {
      head.assign(kHashSize, -1);
      ECOMP_PROF_ALLOC("lz77.scratch",
                       kHashSize * sizeof(std::int32_t));
    } else {
      ECOMP_COUNT("lz77.scratch_reuse");
      std::fill(head.begin(), head.end(), -1);
    }
    if (prev.size() < input_size) {
      ECOMP_PROF_ALLOC("lz77.scratch",
                       (input_size - prev.size()) * sizeof(std::int32_t));
      prev.resize(input_size);
    }
  }
};

MatcherScratch& tokenize_scratch() {
  thread_local MatcherScratch scratch;
  return scratch;
}

struct Matcher {
  ByteSpan in;
  Lz77Params params;
  std::vector<std::int32_t>& head;
  std::vector<std::int32_t>& prev;
  // Common-prefix kernel (util/simd.h), fetched once per tokenize call:
  // the chain walk below calls it millions of times per block. Both
  // pointers always have max_len readable bytes (the candidate ends
  // before the current position), which the wide kernels rely on.
  const simd::MatchLengthFn match_length = simd::match_length_fn();

  // Search statistics, accumulated locally (plain integers — the chain
  // walk is the hottest loop in deflate) and flushed to the registry
  // once per tokenize call.
  mutable std::uint64_t stat_probes = 0;
  mutable std::uint64_t stat_finds = 0;
  mutable std::uint64_t stat_matches = 0;
  mutable std::array<std::uint64_t, kChainHistBuckets + 1> chain_hist{};

  Matcher(ByteSpan input, const Lz77Params& p, MatcherScratch& s)
      : in(input), params(p), head(s.head), prev(s.prev) {
    s.prepare(input.size());
  }

  void flush_stats() const {
    if constexpr (obs::kObsEnabled) {
      auto& reg = obs::Registry::global();
      reg.counter("lz77.match_probes").add(stat_probes);
      reg.counter("lz77.match_finds").add(stat_finds);
      reg.counter("lz77.matches_found").add(stat_matches);
      reg.histogram("lz77.chain_len", obs::pow2_bounds(kChainHistBuckets))
          .merge_buckets(chain_hist.data(), chain_hist.size(),
                         static_cast<double>(stat_probes));
    }
  }

  void insert(std::size_t pos) {
    if (pos + kLzMinMatch > in.size()) return;
    const std::uint32_t h = hash3(in.data() + pos);
    prev[pos] = head[h];
    head[h] = static_cast<std::int32_t>(pos);
  }

  /// Best match at `pos`, at least `min_len+1` long to be returned.
  /// Returns {length, distance}; length 0 when none found.
  std::pair<int, int> find(std::size_t pos, int min_len) const {
    if (pos + kLzMinMatch > in.size()) return {0, 0};
    const int max_len =
        static_cast<int>(std::min<std::size_t>(kLzMaxMatch, in.size() - pos));
    if (max_len < kLzMinMatch) return {0, 0};

    int chain = params.max_chain;
    if (min_len >= params.good_length) chain >>= 2;
    int best_len = std::max(min_len, kLzMinMatch - 1);
    int best_dist = 0;

    const std::uint8_t* cur = in.data() + pos;
    std::int32_t cand = head[hash3(cur)];
    const std::int64_t limit =
        static_cast<std::int64_t>(pos) - params.window_size;
    std::uint64_t probes = 0;
    while (cand >= 0 && cand > limit && chain-- > 0) {
      if (best_len >= max_len) break;  // cannot improve; also guards reads
      if constexpr (obs::kObsEnabled) ++probes;
      if (static_cast<std::size_t>(cand) != pos) {
        const std::uint8_t* cp = in.data() + cand;
        // Quick reject on the byte that would extend the best match.
        if (cp[best_len] == cur[best_len]) {
          const int len = match_length(cp, cur, max_len);
          if (len > best_len) {
            best_len = len;
            best_dist = static_cast<int>(pos - static_cast<std::size_t>(cand));
            if (len >= params.nice_length) break;
          }
        }
      }
      cand = prev[cand];
    }
    if constexpr (obs::kObsEnabled) {
      stat_probes += probes;
      ++stat_finds;
      ++chain_hist[obs::pow2_bucket(probes, kChainHistBuckets)];
    }
    if (best_dist == 0 || best_len < kLzMinMatch) return {0, 0};
    if constexpr (obs::kObsEnabled) ++stat_matches;
    return {best_len, best_dist};
  }
};

}  // namespace

std::vector<Lz77Token> lz77_tokenize(ByteSpan input,
                                     const Lz77Params& params) {
  std::vector<Lz77Token> tokens;
  if (input.empty()) return tokens;
  // Block granularity: one zone per tokenize call, never per token.
  ECOMP_PROF_ZONE("lz77.match");
  tokens.reserve(input.size() / 3);
  ECOMP_PROF_ALLOC("lz77.tokens",
                   (input.size() / 3) * sizeof(Lz77Token));

  Matcher m(input, params, tokenize_scratch());
  std::size_t pos = 0;

  // Lazy matching state: a pending match from the previous position.
  bool have_prev = false;
  int prev_len = 0, prev_dist = 0;

  auto emit_literal = [&](std::size_t p) {
    tokens.push_back({0, 0, input[p]});
  };
  auto emit_match = [&](int len, int dist) {
    tokens.push_back({static_cast<std::uint16_t>(len),
                      static_cast<std::uint16_t>(dist), 0});
  };

  while (pos < input.size()) {
    auto [len, dist] = m.find(pos, have_prev ? prev_len : 0);

    if (have_prev) {
      if (len > prev_len && prev_len < params.max_lazy) {
        // Current position found a longer match: the previous position
        // degrades to a literal and the new match stays pending.
        emit_literal(pos - 1);
        prev_len = len;
        prev_dist = dist;
        m.insert(pos);
        ++pos;
        continue;
      }
      // Commit the previous match.
      emit_match(prev_len, prev_dist);
      const std::size_t match_end = (pos - 1) + prev_len;
      while (pos < match_end && pos < input.size()) {
        m.insert(pos);
        ++pos;
      }
      have_prev = false;
      continue;
    }

    if (len >= kLzMinMatch) {
      if (params.lazy && len < params.max_lazy && pos + 1 < input.size()) {
        prev_len = len;
        prev_dist = dist;
        have_prev = true;
        m.insert(pos);
        ++pos;
        continue;
      }
      emit_match(len, dist);
      const std::size_t match_end = pos + len;
      while (pos < match_end) {
        m.insert(pos);
        ++pos;
      }
      continue;
    }

    emit_literal(pos);
    m.insert(pos);
    ++pos;
  }
  if (have_prev) {
    // Input ended while a match was pending: it is still valid.
    emit_match(prev_len, prev_dist);
  }
  m.flush_stats();
  ECOMP_COUNT_N("lz77.tokens", tokens.size());
  return tokens;
}

Bytes lz77_reconstruct(const std::vector<Lz77Token>& tokens) {
  ECOMP_PROF_ZONE("lz77.reconstruct");
  std::size_t total = 0;
  for (const auto& t : tokens)
    total += t.length == 0 ? 1 : static_cast<std::size_t>(t.length);

  Bytes out;
  out.reserve(total);  // no reallocation below: pointers stay valid
  for (const auto& t : tokens) {
    if (t.length == 0) {
      out.push_back(t.literal);
      continue;
    }
    if (t.distance == 0 || t.distance > out.size())
      throw Error("lz77: invalid distance");
    const std::size_t len = t.length;
    const std::size_t dist = t.distance;
    const std::size_t start = out.size();
    out.resize(start + len);
    std::uint8_t* dst = out.data() + start;
    const std::uint8_t* src = dst - dist;
    if (dist >= len) {
      // Source and destination cannot overlap: one straight copy.
      std::memcpy(dst, src, len);
    } else if (dist >= 8) {
      // Overlapping repeat of a >=8-byte period: copy in chunks whose
      // stride is a multiple of the period, so each memcpy reads only
      // bytes already written and never overlaps its destination. The
      // writable chunk roughly doubles per pass — O(log(len/dist))
      // memcpys for the whole token.
      std::size_t w = 0;
      while (w < len) {
        const std::size_t stride = ((w + dist) / dist) * dist;
        const std::size_t n = std::min(stride, len - w);
        std::memcpy(dst + w, dst + w - stride, n);
        w += n;
      }
    } else {
      // Short period (RLE-like): byte loop is already near-optimal.
      for (std::size_t i = 0; i < len; ++i) dst[i] = src[i];
    }
  }
  return out;
}

}  // namespace ecomp::compress

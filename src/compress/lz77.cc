#include "compress/lz77.h"

#include <algorithm>
#include <array>

#include "obs/metrics.h"

namespace ecomp::compress {

Lz77Params Lz77Params::for_level(int level) {
  // Mirrors zlib's configuration_table.
  switch (std::clamp(level, 1, 9)) {
    case 1: return {4, 4, 8, 4, false};
    case 2: return {4, 5, 16, 8, false};
    case 3: return {4, 6, 32, 32, false};
    case 4: return {4, 4, 16, 16, true};
    case 5: return {8, 16, 32, 32, true};
    case 6: return {8, 16, 128, 128, true};
    case 7: return {8, 32, 128, 256, true};
    case 8: return {32, 128, 258, 1024, true};
    default: return {32, 258, 258, 4096, true};
  }
}

namespace {

constexpr int kHashBits = 15;
constexpr std::uint32_t kHashSize = 1u << kHashBits;

inline std::uint32_t hash3(const std::uint8_t* p) {
  // Multiplicative hash of 3 bytes.
  const std::uint32_t v =
      std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
      (std::uint32_t{p[2]} << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Length of the common prefix of a (candidate) and b (current), capped.
inline int match_length(const std::uint8_t* a, const std::uint8_t* b,
                        int max_len) {
  int n = 0;
  while (n < max_len && a[n] == b[n]) ++n;
  return n;
}

// Bucket count for the probes-per-find histogram (pow2 bounds 1..2^11,
// matching the largest max_chain of 4096 within two buckets).
constexpr int kChainHistBuckets = 12;

struct Matcher {
  ByteSpan in;
  Lz77Params params;
  std::vector<std::int32_t> head;  // hash -> most recent position
  std::vector<std::int32_t> prev;  // position -> previous with same hash

  // Search statistics, accumulated locally (plain integers — the chain
  // walk is the hottest loop in deflate) and flushed to the registry
  // once per tokenize call.
  mutable std::uint64_t stat_probes = 0;
  mutable std::uint64_t stat_finds = 0;
  mutable std::uint64_t stat_matches = 0;
  mutable std::array<std::uint64_t, kChainHistBuckets + 1> chain_hist{};

  explicit Matcher(ByteSpan input, const Lz77Params& p)
      : in(input), params(p), head(kHashSize, -1), prev(input.size(), -1) {}

  void flush_stats() const {
    if constexpr (obs::kObsEnabled) {
      auto& reg = obs::Registry::global();
      reg.counter("lz77.match_probes").add(stat_probes);
      reg.counter("lz77.match_finds").add(stat_finds);
      reg.counter("lz77.matches_found").add(stat_matches);
      reg.histogram("lz77.chain_len", obs::pow2_bounds(kChainHistBuckets))
          .merge_buckets(chain_hist.data(), chain_hist.size(),
                         static_cast<double>(stat_probes));
    }
  }

  void insert(std::size_t pos) {
    if (pos + kLzMinMatch > in.size()) return;
    const std::uint32_t h = hash3(in.data() + pos);
    prev[pos] = head[h];
    head[h] = static_cast<std::int32_t>(pos);
  }

  /// Best match at `pos`, at least `min_len+1` long to be returned.
  /// Returns {length, distance}; length 0 when none found.
  std::pair<int, int> find(std::size_t pos, int min_len) const {
    if (pos + kLzMinMatch > in.size()) return {0, 0};
    const int max_len =
        static_cast<int>(std::min<std::size_t>(kLzMaxMatch, in.size() - pos));
    if (max_len < kLzMinMatch) return {0, 0};

    int chain = params.max_chain;
    if (min_len >= params.good_length) chain >>= 2;
    int best_len = std::max(min_len, kLzMinMatch - 1);
    int best_dist = 0;

    const std::uint8_t* cur = in.data() + pos;
    std::int32_t cand = head[hash3(cur)];
    const std::int64_t limit =
        static_cast<std::int64_t>(pos) - params.window_size;
    std::uint64_t probes = 0;
    while (cand >= 0 && cand > limit && chain-- > 0) {
      if (best_len >= max_len) break;  // cannot improve; also guards reads
      if constexpr (obs::kObsEnabled) ++probes;
      if (static_cast<std::size_t>(cand) != pos) {
        const std::uint8_t* cp = in.data() + cand;
        // Quick reject on the byte that would extend the best match.
        if (cp[best_len] == cur[best_len]) {
          const int len = match_length(cp, cur, max_len);
          if (len > best_len) {
            best_len = len;
            best_dist = static_cast<int>(pos - static_cast<std::size_t>(cand));
            if (len >= params.nice_length) break;
          }
        }
      }
      cand = prev[cand];
    }
    if constexpr (obs::kObsEnabled) {
      stat_probes += probes;
      ++stat_finds;
      ++chain_hist[obs::pow2_bucket(probes, kChainHistBuckets)];
    }
    if (best_dist == 0 || best_len < kLzMinMatch) return {0, 0};
    if constexpr (obs::kObsEnabled) ++stat_matches;
    return {best_len, best_dist};
  }
};

}  // namespace

std::vector<Lz77Token> lz77_tokenize(ByteSpan input,
                                     const Lz77Params& params) {
  std::vector<Lz77Token> tokens;
  if (input.empty()) return tokens;
  tokens.reserve(input.size() / 3);

  Matcher m(input, params);
  std::size_t pos = 0;

  // Lazy matching state: a pending match from the previous position.
  bool have_prev = false;
  int prev_len = 0, prev_dist = 0;

  auto emit_literal = [&](std::size_t p) {
    tokens.push_back({0, 0, input[p]});
  };
  auto emit_match = [&](int len, int dist) {
    tokens.push_back({static_cast<std::uint16_t>(len),
                      static_cast<std::uint16_t>(dist), 0});
  };

  while (pos < input.size()) {
    auto [len, dist] = m.find(pos, have_prev ? prev_len : 0);

    if (have_prev) {
      if (len > prev_len && prev_len < params.max_lazy) {
        // Current position found a longer match: the previous position
        // degrades to a literal and the new match stays pending.
        emit_literal(pos - 1);
        prev_len = len;
        prev_dist = dist;
        m.insert(pos);
        ++pos;
        continue;
      }
      // Commit the previous match.
      emit_match(prev_len, prev_dist);
      const std::size_t match_end = (pos - 1) + prev_len;
      while (pos < match_end && pos < input.size()) {
        m.insert(pos);
        ++pos;
      }
      have_prev = false;
      continue;
    }

    if (len >= kLzMinMatch) {
      if (params.lazy && len < params.max_lazy && pos + 1 < input.size()) {
        prev_len = len;
        prev_dist = dist;
        have_prev = true;
        m.insert(pos);
        ++pos;
        continue;
      }
      emit_match(len, dist);
      const std::size_t match_end = pos + len;
      while (pos < match_end) {
        m.insert(pos);
        ++pos;
      }
      continue;
    }

    emit_literal(pos);
    m.insert(pos);
    ++pos;
  }
  if (have_prev) {
    // Input ended while a match was pending: it is still valid.
    emit_match(prev_len, prev_dist);
  }
  m.flush_stats();
  ECOMP_COUNT_N("lz77.tokens", tokens.size());
  return tokens;
}

Bytes lz77_reconstruct(const std::vector<Lz77Token>& tokens) {
  Bytes out;
  for (const auto& t : tokens) {
    if (t.length == 0) {
      out.push_back(t.literal);
    } else {
      if (t.distance == 0 || t.distance > out.size())
        throw Error("lz77: invalid distance");
      std::size_t from = out.size() - t.distance;
      for (int i = 0; i < t.length; ++i) out.push_back(out[from + i]);
    }
  }
  return out;
}

}  // namespace ecomp::compress

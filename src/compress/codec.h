// Abstract codec interface + registry for ecomp's three universal
// lossless compressors (the paper's gzip / compress / bzip2 trio).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace ecomp::compress {

/// A one-shot universal lossless codec. Implementations are stateless
/// and thread-compatible: const methods may be called concurrently.
class Codec {
 public:
  virtual ~Codec() = default;

  /// Short tool-style name ("deflate", "lzw", "bwt").
  virtual std::string_view name() const = 0;

  /// Compress the whole input into a self-contained framed buffer.
  virtual Bytes compress(ByteSpan input) const = 0;

  /// Decompress a buffer produced by compress(). Throws ecomp::Error on
  /// corrupt or mismatched input.
  virtual Bytes decompress(ByteSpan input) const = 0;
};

/// input_size / output_size (the paper's "compression factor"; its
/// reciprocal is the "compression ratio"). Empty input has factor 1.
double compression_factor(const Codec& codec, ByteSpan input);

/// Built-in codecs at a given effort level.
/// level: 1 (fast) .. 9 (best), matching the paper's use of "-9".
std::unique_ptr<Codec> make_deflate(int level = 9);
std::unique_ptr<Codec> make_lzw(int max_bits = 16);
std::unique_ptr<Codec> make_bwt(int level = 9);

/// Lookup by name ("deflate"|"gzip", "lzw"|"compress", "bwt"|"bzip2").
/// Throws Error for unknown names.
std::unique_ptr<Codec> make_codec(std::string_view name);

/// All registered codec names (canonical forms).
std::vector<std::string> codec_names();

}  // namespace ecomp::compress

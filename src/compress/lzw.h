// LZW codec — the repo's stand-in for UNIX compress (ncompress 4.2.4).
//
// Matches the algorithm the paper describes in §3: a growing dictionary
// starting at 512 entries / 9-bit codes, doubling up to 16-bit codes;
// once the dictionary is full, coding continues without growth until the
// running compression factor degrades, at which point a CLEAR code
// resets the dictionary.
#pragma once

#include <cstdint>

#include "compress/codec.h"

namespace ecomp::compress {

inline constexpr std::uint16_t kLzwMagic = 0xE002;

class LzwCodec final : public Codec {
 public:
  /// max_bits in [9, 16]; the paper runs "compress -b 16".
  explicit LzwCodec(int max_bits = 16);

  std::string_view name() const override { return "lzw"; }
  Bytes compress(ByteSpan input) const override;
  Bytes decompress(ByteSpan input) const override;

  int max_bits() const { return max_bits_; }

 private:
  int max_bits_;
};

}  // namespace ecomp::compress

#include "compress/codec.h"

#include "compress/bwt_codec.h"
#include "compress/bz2_format.h"
#include "compress/deflate.h"
#include "compress/gzip_format.h"
#include "compress/lzw.h"
#include "compress/z_format.h"

namespace ecomp::compress {
namespace {

/// Wrappers exposing the interoperable on-disk formats through the
/// Codec interface. Note: .Z carries no integrity check (the historical
/// format has none), so its decompress only detects structural damage.
class GzFormatCodec final : public Codec {
 public:
  explicit GzFormatCodec(int level) : level_(level) {}
  std::string_view name() const override { return "gz"; }
  Bytes compress(ByteSpan input) const override {
    return gzip_compress(input, level_);
  }
  Bytes decompress(ByteSpan input) const override {
    return gzip_decompress(input);
  }

 private:
  int level_;
};

class ZFormatCodec final : public Codec {
 public:
  std::string_view name() const override { return "Z"; }
  Bytes compress(ByteSpan input) const override { return z_compress(input); }
  Bytes decompress(ByteSpan input) const override {
    return z_decompress(input);
  }
};

class Bz2FormatCodec final : public Codec {
 public:
  explicit Bz2FormatCodec(int level) : level_(level) {}
  std::string_view name() const override { return "bz2"; }
  Bytes compress(ByteSpan input) const override {
    return bz2_compress(input, level_);
  }
  Bytes decompress(ByteSpan input) const override {
    return bz2_decompress(input);
  }

 private:
  int level_;
};

}  // namespace

double compression_factor(const Codec& codec, ByteSpan input) {
  if (input.empty()) return 1.0;
  const Bytes out = codec.compress(input);
  if (out.empty()) return 1.0;
  return static_cast<double>(input.size()) / static_cast<double>(out.size());
}

std::unique_ptr<Codec> make_deflate(int level) {
  return std::make_unique<DeflateCodec>(level);
}

std::unique_ptr<Codec> make_lzw(int max_bits) {
  return std::make_unique<LzwCodec>(max_bits);
}

std::unique_ptr<Codec> make_bwt(int level) {
  return std::make_unique<BwtCodec>(level);
}

std::unique_ptr<Codec> make_codec(std::string_view name) {
  if (name == "deflate" || name == "gzip" || name == "zlib")
    return make_deflate();
  if (name == "lzw" || name == "compress") return make_lzw();
  if (name == "bwt" || name == "bzip2") return make_bwt();
  // The interoperable on-disk formats of the paper's three tools.
  if (name == "gz") return std::make_unique<GzFormatCodec>(9);
  if (name == "Z") return std::make_unique<ZFormatCodec>();
  if (name == "bz2") return std::make_unique<Bz2FormatCodec>(9);
  throw Error("unknown codec: " + std::string(name));
}

std::vector<std::string> codec_names() { return {"deflate", "lzw", "bwt"}; }

}  // namespace ecomp::compress

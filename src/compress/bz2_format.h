// bzip2 .bz2 file format — the exact on-disk format of the paper's
// third tool (bzip2 1.0.1), over this repo's BWT machinery. Interops
// with real bzip2: the tests round-trip through the system binary in
// both directions where it is installed.
//
// Format summary (bit stream, MSB-first, blocks NOT byte-aligned):
//   "BZh" level |
//   per block: 48-bit magic 314159265359h | block CRC | randomized(=0) |
//     24-bit origPtr | symbol usage maps | nGroups | nSelectors |
//     MTF+unary selectors | delta-coded code lengths | Huffman symbols |
//   48-bit footer magic 177245385090h | combined CRC | pad to byte.
//
// Inside a block: RLE1 (runs of 4..255+count) -> BWT -> MTF over the
// in-use alphabet -> RUNA/RUNB zero-run coding -> 2..6 Huffman tables
// selected per 50-symbol group.
#pragma once

#include "util/bytes.h"

namespace ecomp::compress {

/// level 1..9 selects the block size (level × 100 kB), as bzip2 -1..-9.
Bytes bz2_compress(ByteSpan input, int level = 9);
Bytes bz2_decompress(ByteSpan input);
bool looks_like_bz2(ByteSpan data);

}  // namespace ecomp::compress

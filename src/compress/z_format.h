// UNIX compress(1) .Z file format — the exact on-disk format of the
// paper's second tool (ncompress 4.2.4). Interops with the historical
// decoder family: the tests feed our output to /usr/bin/uncompress and
// gzip -d where available.
//
// Format notes (matching ncompress/gzip-unlzw semantics):
//  * header 0x1f 0x9d, then flags = maxbits | 0x80 (block mode);
//  * LZW codes packed LSB-first, widths 9..maxbits;
//  * width changes and CLEAR resets only take effect at 8-code group
//    boundaries — the stream pads with zero bits to a multiple of
//    n_bits bytes (measured from where the current width began);
//  * code 256 is CLEAR; the decoder burns one table slot after each
//    CLEAR (historical off-by-one kept for compatibility).
#pragma once

#include "util/bytes.h"

namespace ecomp::compress {

Bytes z_compress(ByteSpan input, int max_bits = 16);
Bytes z_decompress(ByteSpan input);
bool looks_like_z(ByteSpan data);

}  // namespace ecomp::compress

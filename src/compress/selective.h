// Block-by-block selective compression container — the paper's Fig. 10
// scheme, and (with an always-compress policy) the plain chunked "zlib"
// stream used for interleaved downloading.
//
// Layout:
//   magic | varint original_size | crc32 | varint block_size |
//   varint n_blocks | n × ( flag byte | varint payload_size | payload )
// where flag 0 = raw bytes, 1 = framed deflate member.
//
// Each block is independently decodable, which is what lets the receiver
// interleave decompression of block i with the download of block i+1.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "compress/codec.h"

namespace ecomp::compress {

inline constexpr std::uint16_t kSelectiveMagic = 0xE004;

/// Matches the paper's compression buffer assumption of 0.128 MB.
inline constexpr std::size_t kDefaultBlockSize = 128 * 1024;

/// Decision policy for Fig. 10. `energy_test(raw, comp)` returns true
/// when shipping `comp` compressed bytes (for `raw` original bytes) is
/// predicted to cost less energy than shipping raw (Eq. 6); blocks
/// smaller than `min_block_bytes` skip compression outright (the paper's
/// 3900-byte threshold).
///
/// In parallel mode (threads > 1) the energy_test is called from pool
/// worker threads, possibly concurrently — it must be thread-safe
/// (pure functions of its two arguments, like the built-ins, trivially
/// are).
struct SelectivePolicy {
  std::size_t min_block_bytes = 3900;
  std::function<bool(std::size_t raw_size, std::size_t compressed_size)>
      energy_test;

  /// Compress every block that shrinks at all (the plain zlib role).
  static SelectivePolicy always();
  /// Never compress (raw container, used for baselines and tests).
  static SelectivePolicy never();
};

/// Per-block outcome, exposed for benches and the transfer simulator.
struct BlockInfo {
  std::size_t raw_size = 0;
  std::size_t payload_size = 0;  ///< bytes stored in the container
  bool compressed = false;
};

struct SelectiveResult {
  Bytes container;
  std::vector<BlockInfo> blocks;
};

/// Compress `input` block by block per the policy. `level` is the
/// deflate effort for compressed blocks. With `threads` > 1 the blocks
/// are compressed concurrently on a par::ThreadPool and reassembled
/// through an ordered-completion reorder buffer; because each block is
/// encoded independently and deterministically, the container is
/// byte-identical to the serial (threads == 1) output at any thread
/// count.
SelectiveResult selective_compress(ByteSpan input,
                                   const SelectivePolicy& policy,
                                   std::size_t block_size = kDefaultBlockSize,
                                   int level = 9, unsigned threads = 1);

/// Full decode with CRC verification. With `threads` > 1 the
/// independently decodable blocks are inflated concurrently, each into
/// its own slice of the output (offsets are known up front from the
/// block table), then the whole buffer is CRC-checked as usual.
Bytes selective_decompress(ByteSpan container, unsigned threads = 1);

/// Parse the container's block table without decoding payloads.
std::vector<BlockInfo> selective_block_info(ByteSpan container);

/// Decode a single block payload (flag + payload bytes as stored).
Bytes selective_decode_block(const BlockInfo& info, ByteSpan payload,
                             bool is_compressed);

/// What a tolerant decode of a damaged container managed to recover.
/// Because blocks are independently decodable, one corrupted payload
/// loses one block, not the file: the decoder skips to the next block
/// boundary and zero-fills the gap so every surviving byte keeps its
/// original offset. Only when the framing itself (a flag byte's varint
/// or a payload length) is destroyed does the remaining tail go with it.
struct RecoveryReport {
  std::size_t blocks_total = 0;      ///< blocks the framing declared
  std::size_t blocks_recovered = 0;  ///< decoded and inserted verbatim
  std::size_t blocks_lost = 0;       ///< zero-filled or missing
  std::size_t bytes_recovered = 0;
  std::size_t bytes_lost = 0;        ///< zero-filled + missing tail
  bool framing_truncated = false;    ///< block table broke before the end
  bool crc_ok = false;               ///< container CRC verified
  /// True only for an undamaged container (salvage found nothing wrong).
  bool complete() const {
    return blocks_lost == 0 && !framing_truncated && crc_ok;
  }
};

struct SalvageResult {
  /// Reconstructed data, original_size bytes unless the tail was lost;
  /// lost blocks are zero-filled so offsets are preserved.
  Bytes data;
  RecoveryReport report;
};

/// Best-effort decode of a corrupted or truncated selective container.
/// Never throws on damaged content: whatever blocks still decode are
/// salvaged and the report says what was lost. (A container whose
/// header is unreadable yields zero bytes and a fully-lost report.)
SalvageResult selective_salvage(ByteSpan container);

/// Incremental producer of a selective container: emits the header,
/// then one encoded block per pull. This is the proxy side of §5's
/// compression-on-demand overlap — the server ships block i while
/// block i+1 is still being compressed. The input must stay alive for
/// the encoder's lifetime.
/// With `threads` > 1 the encoder keeps a lookahead window of blocks
/// compressing on a pool while next_chunk() hands out finished ones in
/// order, so the proxy genuinely compresses block i+1..i+w while block
/// i is on the wire — and the chunk sequence stays byte-identical to
/// the serial encoder's.
class SelectiveStreamEncoder {
 public:
  SelectiveStreamEncoder(ByteSpan input, SelectivePolicy policy,
                         std::size_t block_size = kDefaultBlockSize,
                         int level = 9, unsigned threads = 1);
  ~SelectiveStreamEncoder();
  SelectiveStreamEncoder(const SelectiveStreamEncoder&) = delete;
  SelectiveStreamEncoder& operator=(const SelectiveStreamEncoder&) = delete;

  /// False once every chunk (header + all blocks) has been produced.
  bool done() const { return header_sent_ && offset_ >= input_.size(); }

  /// Produce the next wire chunk: first call returns the container
  /// header, each further call one encoded block. Empty when done.
  Bytes next_chunk();

  /// Decisions for the blocks produced so far.
  const std::vector<BlockInfo>& blocks() const { return blocks_; }

 private:
  struct Pipeline;  // pool + in-flight block futures (parallel mode)

  ByteSpan input_;
  SelectivePolicy policy_;
  std::size_t block_size_;
  int level_;
  bool header_sent_ = false;
  std::size_t offset_ = 0;   ///< raw bytes already delivered as chunks
  std::vector<BlockInfo> blocks_;
  std::unique_ptr<Pipeline> pipeline_;
};

}  // namespace ecomp::compress

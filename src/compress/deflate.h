// DEFLATE-style codec (RFC 1951 block format) over the LZ77 tokenizer —
// the repo's stand-in for gzip 1.2.4 / zlib 1.1.3.
//
// The bit-level block format follows RFC 1951 (stored / fixed-Huffman /
// dynamic-Huffman blocks, length+distance alphabets, code-length code
// with 16/17/18 repeats). The framing differs from gzip only in the
// container header (see container.h), which carries the original size
// and CRC-32 like a gzip member trailer does.
#pragma once

#include <cstdint>
#include <memory>

#include "compress/codec.h"
#include "compress/lz77.h"
#include "util/bitio.h"
#include "util/bytes.h"

namespace ecomp::compress {

inline constexpr std::uint16_t kDeflateMagic = 0xE001;

/// Raw DEFLATE bit-stream (no ecomp container): compress `input` as a
/// sequence of blocks, the last marked BFINAL, into `out`.
void deflate_raw(ByteSpan input, const Lz77Params& params, BitWriterLsb& out);

/// Inverse of deflate_raw: reads blocks until BFINAL. `size_hint` is
/// used only to reserve the output buffer.
Bytes inflate_raw(BitReaderLsb& in, std::size_t size_hint = 0);

class DeflateCodec final : public Codec {
 public:
  explicit DeflateCodec(int level = 9)
      : level_(level), params_(Lz77Params::for_level(level)) {}

  std::string_view name() const override { return "deflate"; }
  Bytes compress(ByteSpan input) const override;
  Bytes decompress(ByteSpan input) const override;

  int level() const { return level_; }

 private:
  int level_;
  Lz77Params params_;
};

}  // namespace ecomp::compress

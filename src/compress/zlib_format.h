// RFC 1950 zlib stream format — the exact container of the paper's
// zlib 1.1.3 library (its interleaving implementation is built on
// zlib). 2-byte CMF/FLG header, raw DEFLATE body, big-endian Adler-32
// trailer. Differential-tested against Python's zlib where available.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace ecomp::compress {

/// Adler-32 checksum (RFC 1950 §8), incremental.
class Adler32 {
 public:
  void update(ByteSpan data);
  std::uint32_t value() const { return (b_ << 16) | a_; }

 private:
  std::uint32_t a_ = 1;
  std::uint32_t b_ = 0;
};

std::uint32_t adler32(ByteSpan data);

/// Produce a complete zlib stream.
Bytes zlib_compress(ByteSpan input, int level = 9);

/// Decode a zlib stream (ours or any standard zlib's). Verifies the
/// header check bits and the Adler-32 trailer.
Bytes zlib_decompress(ByteSpan input);

bool looks_like_zlib(ByteSpan data);

}  // namespace ecomp::compress

#include "compress/zlib_format.h"

#include "compress/deflate.h"
#include "util/bitio.h"

namespace ecomp::compress {
namespace {

constexpr std::uint32_t kAdlerMod = 65521;
constexpr std::uint8_t kCmfDeflate32k = 0x78;  // CM=8, CINFO=7 (32 KB)

}  // namespace

void Adler32::update(ByteSpan data) {
  // Process in chunks small enough that the sums cannot overflow before
  // the modulo (zlib's NMAX trick).
  constexpr std::size_t kNmax = 5552;
  std::size_t i = 0;
  while (i < data.size()) {
    const std::size_t end = std::min(data.size(), i + kNmax);
    for (; i < end; ++i) {
      a_ += data[i];
      b_ += a_;
    }
    a_ %= kAdlerMod;
    b_ %= kAdlerMod;
  }
}

std::uint32_t adler32(ByteSpan data) {
  Adler32 a;
  a.update(data);
  return a.value();
}

bool looks_like_zlib(ByteSpan data) {
  if (data.size() < 2) return false;
  const std::uint8_t cmf = data[0];
  if ((cmf & 0x0f) != 8) return false;          // CM must be deflate
  if ((cmf >> 4) > 7) return false;             // CINFO <= 7
  const unsigned check = (unsigned{cmf} << 8) | data[1];
  return check % 31 == 0;
}

Bytes zlib_compress(ByteSpan input, int level) {
  Bytes out;
  out.push_back(kCmfDeflate32k);
  // FLG: FLEVEL hint in the top 2 bits, FDICT=0, FCHECK makes the
  // 16-bit header a multiple of 31.
  const unsigned flevel = level >= 7 ? 3u : level >= 5 ? 2u
                                      : level >= 2    ? 1u
                                                      : 0u;
  unsigned flg = flevel << 6;
  const unsigned header = (unsigned{kCmfDeflate32k} << 8) | flg;
  flg |= (31 - header % 31) % 31;  // FCHECK
  out.push_back(static_cast<std::uint8_t>(flg));

  BitWriterLsb bw;
  deflate_raw(input, Lz77Params::for_level(level), bw);
  const Bytes payload = bw.take();
  out.insert(out.end(), payload.begin(), payload.end());

  const std::uint32_t adler = adler32(input);
  for (int i = 3; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>((adler >> (8 * i)) & 0xff));
  return out;
}

Bytes zlib_decompress(ByteSpan input) {
  if (input.size() < 6) throw Error("zlib: stream too short");
  if (!looks_like_zlib(input)) throw Error("zlib: bad header");
  if (input[1] & 0x20) throw Error("zlib: preset dictionaries unsupported");

  BitReaderLsb br(input.subspan(2, input.size() - 6));
  const Bytes out = inflate_raw(br);

  std::uint32_t want = 0;
  for (int i = 0; i < 4; ++i)
    want = (want << 8) | input[input.size() - 4 + static_cast<std::size_t>(i)];
  if (adler32(out) != want) throw Error("zlib: Adler-32 mismatch");
  return out;
}

}  // namespace ecomp::compress

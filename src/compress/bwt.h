// Burrows-Wheeler block transform and its inverse, plus the surrounding
// bzip2-style stages (run-length guard, move-to-front, zero-run coding).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace ecomp::compress {

/// Forward BWT of `block` (cyclic-rotation sort, O(n)). The rotation
/// order comes from an SA-IS suffix array of the doubled block; blocks
/// that are cyclically periodic sort one aperiodic unit and expand each
/// rotation class in ascending position order, so the output — last
/// column and `primary` — is bit-identical to the stable prefix-doubling
/// sort it replaced. `primary` receives the row index of the original
/// string in the sorted rotation matrix.
Bytes bwt_forward(ByteSpan block, std::uint32_t& primary);

/// Reference implementation of bwt_forward: prefix doubling with stable
/// radix sorts (O(n log n)). Kept for differential tests; produces
/// byte-identical output including tie order on periodic blocks.
Bytes bwt_forward_doubling(ByteSpan block, std::uint32_t& primary);

/// SA-IS suffix array of `text` under an implicit end-of-string sentinel
/// smaller than every byte: returns the n suffix start positions in
/// increasing suffix order. Exposed for the BWT and its tests.
std::vector<std::uint32_t> suffix_array(ByteSpan text);

/// Inverse BWT.
Bytes bwt_inverse(ByteSpan last_column, std::uint32_t primary);

/// bzip2-style pre-pass: runs of 4..259 equal bytes become 4 copies plus
/// a count byte. Guards the rotation sort against degenerate inputs.
Bytes rle1_encode(ByteSpan input);
Bytes rle1_decode(ByteSpan input);

/// Move-to-front transform over the byte alphabet.
Bytes mtf_encode(ByteSpan input);
Bytes mtf_decode(ByteSpan input);

/// Zero-run coding of MTF output into the 258-symbol alphabet used by
/// the entropy stage: RUNA=0 / RUNB=1 encode zero runs in bijective
/// base 2, byte value v>0 maps to v+1, and 257 is end-of-block.
inline constexpr std::uint32_t kZrleRunA = 0;
inline constexpr std::uint32_t kZrleRunB = 1;
inline constexpr std::uint32_t kZrleEob = 257;
inline constexpr std::size_t kZrleAlphabet = 258;

std::vector<std::uint16_t> zrle_encode(ByteSpan mtf);
Bytes zrle_decode(const std::vector<std::uint16_t>& syms);

}  // namespace ecomp::compress

#include "compress/bz2_format.h"

#include <algorithm>
#include <array>

#include "compress/bwt.h"
#include "compress/huffman.h"
#include "util/bitio.h"

namespace ecomp::compress {
namespace {

constexpr std::uint32_t kBlockMagicHi = 0x314159;  // "pi"
constexpr std::uint32_t kBlockMagicLo = 0x265359;
constexpr std::uint32_t kFooterMagicHi = 0x177245;  // "sqrt(pi)"
constexpr std::uint32_t kFooterMagicLo = 0x385090;
constexpr int kGroupSize = 50;
constexpr int kMaxGroups = 6;
constexpr int kMaxCodeLenEnc = 17;  // encoder limit (decoder accepts 23)
constexpr std::uint16_t kRunA = 0;
constexpr std::uint16_t kRunB = 1;

// ---------------------------------------------------------------- bz2 CRC

/// bzip2's CRC-32: polynomial 0x04c11db7, MSB-first (not reflected),
/// init 0xffffffff, final complement.
constexpr std::array<std::uint32_t, 256> make_bz2_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i << 24;
    for (int k = 0; k < 8; ++k)
      c = (c & 0x80000000u) ? (c << 1) ^ 0x04c11db7u : (c << 1);
    t[i] = c;
  }
  return t;
}
constexpr auto kBz2CrcTable = make_bz2_crc_table();

class Bz2Crc {
 public:
  void update(std::uint8_t b) {
    state_ = (state_ << 8) ^ kBz2CrcTable[(state_ >> 24) ^ b];
  }
  void update(ByteSpan data) {
    for (auto b : data) update(b);
  }
  std::uint32_t value() const { return ~state_; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

// -------------------------------------------------------------- block body

struct MtfResult {
  std::vector<std::uint16_t> syms;  ///< RUNA/RUNB/2..nInUse/EOB stream
  std::vector<std::uint8_t> in_use_list;  ///< used byte values, ascending
  bool used[256] = {};
  int alpha_size = 0;  ///< nInUse + 2
};

/// bzip2's generateMTFValues: MTF over the in-use alphabet with
/// RUNA/RUNB bijective-base-2 zero runs and a trailing EOB.
MtfResult mtf_and_rle2(ByteSpan bwt_last) {
  MtfResult r;
  for (auto b : bwt_last) r.used[b] = true;
  for (int v = 0; v < 256; ++v)
    if (r.used[v]) r.in_use_list.push_back(static_cast<std::uint8_t>(v));
  const int n_in_use = static_cast<int>(r.in_use_list.size());
  r.alpha_size = n_in_use + 2;
  const std::uint16_t eob = static_cast<std::uint16_t>(n_in_use + 1);

  std::vector<std::uint8_t> order = r.in_use_list;  // MTF list
  std::uint64_t run = 0;
  auto flush_run = [&] {
    while (run > 0) {
      if (run & 1) {
        r.syms.push_back(kRunA);
        run = (run - 1) >> 1;
      } else {
        r.syms.push_back(kRunB);
        run = (run - 2) >> 1;
      }
    }
  };
  for (std::uint8_t b : bwt_last) {
    int idx = 0;
    while (order[static_cast<std::size_t>(idx)] != b) ++idx;
    if (idx == 0) {
      ++run;
    } else {
      flush_run();
      r.syms.push_back(static_cast<std::uint16_t>(idx + 1));
      for (int j = idx; j > 0; --j)
        order[static_cast<std::size_t>(j)] =
            order[static_cast<std::size_t>(j - 1)];
      order[0] = b;
    }
  }
  flush_run();
  r.syms.push_back(eob);
  return r;
}

int groups_for(std::size_t n_syms) {
  // bzlib's nGroups choice.
  if (n_syms < 200) return 2;
  if (n_syms < 600) return 3;
  if (n_syms < 1200) return 4;
  if (n_syms < 2400) return 5;
  return kMaxGroups;
}

std::vector<std::uint8_t> bz2_lengths(const std::vector<std::uint64_t>& freq,
                                      int alpha_size) {
  // bzip2 gives every alphabet symbol a code (freq 0 treated as 1).
  std::vector<std::uint64_t> f(freq.begin(),
                               freq.begin() + alpha_size);
  for (auto& x : f) ++x;
  auto lengths = huffman::build_code_lengths(f, kMaxCodeLenEnc);
  // build_code_lengths only leaves zero lengths for zero freqs, which
  // cannot happen after the +1; but be defensive for alpha_size == 1.
  for (auto& l : lengths)
    if (l == 0) l = 1;
  return lengths;
}

void write_block(BitWriterMsb& bw, ByteSpan rle_data, std::uint32_t crc) {
  bw.put(kBlockMagicHi, 24);
  bw.put(kBlockMagicLo, 24);
  bw.put(crc, 32);
  bw.put(0, 1);  // randomized: never

  std::uint32_t primary = 0;
  const Bytes last = bwt_forward(rle_data, primary);
  bw.put(primary, 24);

  const MtfResult mtf = mtf_and_rle2(last);

  // Symbol usage maps: 16-bit coarse map + one 16-bit map per used row.
  std::uint32_t coarse = 0;
  for (int v = 0; v < 256; ++v)
    if (mtf.used[v]) coarse |= 1u << (15 - v / 16);
  bw.put(coarse, 16);
  for (int row = 0; row < 16; ++row) {
    if (!(coarse & (1u << (15 - row)))) continue;
    std::uint32_t fine = 0;
    for (int bit = 0; bit < 16; ++bit)
      if (mtf.used[row * 16 + bit]) fine |= 1u << (15 - bit);
    bw.put(fine, 16);
  }

  const int n_groups = groups_for(mtf.syms.size());
  const std::size_t n_selectors =
      (mtf.syms.size() + kGroupSize - 1) / kGroupSize;
  const int alpha = mtf.alpha_size;

  // Seed tables from contiguous frequency ranges, then refine (bzlib's
  // sendMTFValues structure, simplified but format-identical).
  std::vector<std::uint64_t> freq(static_cast<std::size_t>(alpha), 0);
  for (auto s : mtf.syms) ++freq[s];
  std::vector<std::vector<std::uint8_t>> lengths(
      static_cast<std::size_t>(n_groups));
  {
    std::uint64_t total = mtf.syms.size();
    int lo = 0;
    for (int g = 0; g < n_groups; ++g) {
      const std::uint64_t want =
          total / static_cast<std::uint64_t>(n_groups - g);
      std::uint64_t got = 0;
      int hi = lo;
      while (hi < alpha && (got < want || hi == lo)) got += freq[hi++];
      if (g == n_groups - 1) hi = alpha;
      std::vector<std::uint64_t> f(static_cast<std::size_t>(alpha), 0);
      for (int s = lo; s < hi; ++s) f[static_cast<std::size_t>(s)] = freq[s];
      lengths[static_cast<std::size_t>(g)] = bz2_lengths(f, alpha);
      total -= got;
      lo = hi;
    }
  }
  std::vector<std::uint8_t> selectors(n_selectors, 0);
  for (int pass = 0; pass < 4; ++pass) {
    std::vector<std::vector<std::uint64_t>> gfreq(
        static_cast<std::size_t>(n_groups),
        std::vector<std::uint64_t>(static_cast<std::size_t>(alpha), 0));
    for (std::size_t sel = 0; sel < n_selectors; ++sel) {
      const std::size_t begin = sel * kGroupSize;
      const std::size_t end =
          std::min(begin + kGroupSize, mtf.syms.size());
      int best = 0;
      std::uint64_t best_cost = ~std::uint64_t{0};
      for (int g = 0; g < n_groups; ++g) {
        std::uint64_t cost = 0;
        for (std::size_t i = begin; i < end; ++i)
          cost += lengths[static_cast<std::size_t>(g)][mtf.syms[i]];
        if (cost < best_cost) {
          best_cost = cost;
          best = g;
        }
      }
      selectors[sel] = static_cast<std::uint8_t>(best);
      for (std::size_t i = begin; i < end; ++i)
        ++gfreq[static_cast<std::size_t>(best)][mtf.syms[i]];
    }
    for (int g = 0; g < n_groups; ++g)
      lengths[static_cast<std::size_t>(g)] =
          bz2_lengths(gfreq[static_cast<std::size_t>(g)], alpha);
  }

  bw.put(static_cast<std::uint32_t>(n_groups), 3);
  bw.put(static_cast<std::uint32_t>(n_selectors), 15);

  // Selectors, MTF'd over group indices, unary coded.
  {
    std::array<std::uint8_t, kMaxGroups> order{};
    for (int g = 0; g < n_groups; ++g)
      order[static_cast<std::size_t>(g)] = static_cast<std::uint8_t>(g);
    for (std::uint8_t sel : selectors) {
      int idx = 0;
      while (order[static_cast<std::size_t>(idx)] != sel) ++idx;
      for (int k = 0; k < idx; ++k) bw.put(1, 1);
      bw.put(0, 1);
      for (int j = idx; j > 0; --j)
        order[static_cast<std::size_t>(j)] =
            order[static_cast<std::size_t>(j - 1)];
      order[0] = sel;
    }
  }

  // Code lengths, delta coded per table.
  for (int g = 0; g < n_groups; ++g) {
    int cur = lengths[static_cast<std::size_t>(g)][0];
    bw.put(static_cast<std::uint32_t>(cur), 5);
    for (int s = 0; s < alpha; ++s) {
      const int want = lengths[static_cast<std::size_t>(g)][
          static_cast<std::size_t>(s)];
      while (cur < want) {
        bw.put(2, 2);  // '10' = increment
        ++cur;
      }
      while (cur > want) {
        bw.put(3, 2);  // '11' = decrement
        --cur;
      }
      bw.put(0, 1);  // '0' = next symbol
    }
  }

  // Symbol stream.
  std::vector<huffman::EncoderMsb> encoders;
  encoders.reserve(static_cast<std::size_t>(n_groups));
  for (int g = 0; g < n_groups; ++g)
    encoders.emplace_back(lengths[static_cast<std::size_t>(g)]);
  for (std::size_t i = 0; i < mtf.syms.size(); ++i) {
    const auto& enc = encoders[selectors[i / kGroupSize]];
    enc.encode(bw, mtf.syms[i]);
  }
}

}  // namespace

bool looks_like_bz2(ByteSpan data) {
  return data.size() >= 4 && data[0] == 'B' && data[1] == 'Z' &&
         data[2] == 'h' && data[3] >= '1' && data[3] <= '9';
}

Bytes bz2_compress(ByteSpan input, int level) {
  level = std::clamp(level, 1, 9);
  const std::size_t block_limit =
      static_cast<std::size_t>(level) * 100000 - 20;

  BitWriterMsb bw;
  bw.put('B', 8);
  bw.put('Z', 8);
  bw.put('h', 8);
  bw.put(static_cast<std::uint32_t>('0' + level), 8);

  std::uint32_t combined_crc = 0;

  // Chunk the input so each block's RLE1 form fits the block limit;
  // never split an RLE1 atom.
  std::size_t pos = 0;
  while (pos < input.size()) {
    Bytes rle;
    rle.reserve(block_limit + 8);
    Bz2Crc crc;
    const std::size_t start = pos;
    while (pos < input.size()) {
      const std::uint8_t b = input[pos];
      std::size_t run = 1;
      while (pos + run < input.size() && input[pos + run] == b && run < 255)
        ++run;
      const std::size_t atom = run >= 4 ? 5 : run;
      if (rle.size() + atom > block_limit) break;
      if (run >= 4) {
        rle.insert(rle.end(), 4, b);
        rle.push_back(static_cast<std::uint8_t>(run - 4));
      } else {
        rle.insert(rle.end(), run, b);
      }
      pos += run;
    }
    if (pos == start)
      throw Error("bz2: block limit too small for input atom");
    crc.update(input.subspan(start, pos - start));
    const std::uint32_t block_crc = crc.value();
    combined_crc = ((combined_crc << 1) | (combined_crc >> 31)) ^ block_crc;
    write_block(bw, rle, block_crc);
  }

  bw.put(kFooterMagicHi, 24);
  bw.put(kFooterMagicLo, 24);
  bw.put(combined_crc, 32);
  return bw.take();
}

Bytes bz2_decompress(ByteSpan input) {
  if (!looks_like_bz2(input)) throw Error("bz2: bad stream header");
  const int level = input[3] - '0';
  (void)level;
  BitReaderMsb br(input.subspan(4));

  Bytes out;
  std::uint32_t combined_crc = 0;
  while (true) {
    const std::uint32_t hi = br.get(24);
    const std::uint32_t lo = br.get(24);
    if (hi == kFooterMagicHi && lo == kFooterMagicLo) {
      const std::uint32_t want = br.get(32);
      if (want != combined_crc) throw Error("bz2: combined CRC mismatch");
      return out;
    }
    if (hi != kBlockMagicHi || lo != kBlockMagicLo)
      throw Error("bz2: bad block magic");

    const std::uint32_t want_crc = br.get(32);
    if (br.get(1)) throw Error("bz2: randomized blocks unsupported");
    const std::uint32_t primary = br.get(24);

    // Usage maps.
    bool used[256] = {};
    const std::uint32_t coarse = br.get(16);
    for (int row = 0; row < 16; ++row) {
      if (!(coarse & (1u << (15 - row)))) continue;
      const std::uint32_t fine = br.get(16);
      for (int bit = 0; bit < 16; ++bit)
        if (fine & (1u << (15 - bit))) used[row * 16 + bit] = true;
    }
    std::vector<std::uint8_t> in_use_list;
    for (int v = 0; v < 256; ++v)
      if (used[v]) in_use_list.push_back(static_cast<std::uint8_t>(v));
    const int n_in_use = static_cast<int>(in_use_list.size());
    if (n_in_use == 0) throw Error("bz2: empty alphabet");
    const int alpha = n_in_use + 2;
    const std::uint16_t eob = static_cast<std::uint16_t>(n_in_use + 1);

    const int n_groups = static_cast<int>(br.get(3));
    if (n_groups < 2 || n_groups > kMaxGroups)
      throw Error("bz2: bad group count");
    const std::uint32_t n_selectors = br.get(15);

    // Selectors (unary, MTF'd).
    std::vector<std::uint8_t> selectors(n_selectors);
    {
      std::array<std::uint8_t, kMaxGroups> order{};
      for (int g = 0; g < n_groups; ++g)
        order[static_cast<std::size_t>(g)] = static_cast<std::uint8_t>(g);
      for (auto& sel : selectors) {
        int idx = 0;
        while (br.get(1)) {
          ++idx;
          if (idx >= n_groups) throw Error("bz2: bad selector");
        }
        sel = order[static_cast<std::size_t>(idx)];
        for (int j = idx; j > 0; --j)
          order[static_cast<std::size_t>(j)] =
              order[static_cast<std::size_t>(j - 1)];
        order[0] = sel;
      }
    }

    // Code lengths.
    std::vector<huffman::DecoderMsb> decoders;
    decoders.reserve(static_cast<std::size_t>(n_groups));
    for (int g = 0; g < n_groups; ++g) {
      std::vector<std::uint8_t> lengths(static_cast<std::size_t>(alpha));
      int cur = static_cast<int>(br.get(5));
      for (int s = 0; s < alpha; ++s) {
        while (br.get(1)) {
          cur += br.get(1) ? -1 : 1;
          if (cur < 1 || cur > 23) throw Error("bz2: bad code length");
        }
        lengths[static_cast<std::size_t>(s)] =
            static_cast<std::uint8_t>(cur);
      }
      decoders.emplace_back(lengths);
    }

    // Symbols -> MTF stream -> BWT last column.
    Bytes last;
    {
      std::vector<std::uint8_t> order = in_use_list;
      std::uint64_t run = 0, place = 1;
      auto flush_run = [&] {
        if (run > 0) {
          if (last.size() + run > (10u << 20))
            throw Error("bz2: block too large");
          last.insert(last.end(), run, order[0]);
          run = 0;
        }
        place = 1;
      };
      std::size_t sym_index = 0;
      bool block_done = false;
      while (!block_done) {
        const std::size_t group = sym_index / kGroupSize;
        if (group >= selectors.size()) throw Error("bz2: selector overrun");
        const auto& dec = decoders[selectors[group]];
        const std::uint32_t s = dec.decode(br);
        ++sym_index;
        if (s == kRunA || s == kRunB) {
          run += place * (s == kRunA ? 1 : 2);
          place <<= 1;
          continue;
        }
        flush_run();
        if (s == eob) {
          block_done = true;
          continue;
        }
        if (static_cast<int>(s) > n_in_use)
          throw Error("bz2: symbol out of range");
        const std::uint8_t b = order[s - 1];
        last.push_back(b);
        for (std::size_t j = s - 1; j > 0; --j) order[j] = order[j - 1];
        order[0] = b;
      }
    }

    if (primary >= last.size()) throw Error("bz2: bad origPtr");
    const Bytes rle = bwt_inverse(last, primary);
    const Bytes plain = rle1_decode(rle);

    Bz2Crc crc;
    crc.update(plain);
    if (crc.value() != want_crc) throw Error("bz2: block CRC mismatch");
    combined_crc =
        ((combined_crc << 1) | (combined_crc >> 31)) ^ crc.value();
    out.insert(out.end(), plain.begin(), plain.end());
  }
}

}  // namespace ecomp::compress

// LZ77 tokenization with a 32 KB sliding window, hash chains and lazy
// matching — the algorithmic heart of the paper's winning codec (gzip).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace ecomp::compress {

/// One LZ77 token: either a literal byte (length == 0) or a back
/// reference (length in [kMinMatch, kMaxMatch], distance in
/// [1, kWindowSize]).
struct Lz77Token {
  std::uint16_t length = 0;    // 0 => literal
  std::uint16_t distance = 0;  // valid when length > 0
  std::uint8_t literal = 0;    // valid when length == 0
};

inline constexpr int kLzMinMatch = 3;
inline constexpr int kLzMaxMatch = 258;
inline constexpr int kLzWindowSize = 32 * 1024;

/// Effort parameters, mirroring zlib's per-level configuration table.
struct Lz77Params {
  int good_length;  ///< reduce chain search when current match ≥ this
  int max_lazy;     ///< only defer to lazy match when match < this
  int nice_length;  ///< stop searching when match ≥ this
  int max_chain;    ///< hash-chain positions to examine
  bool lazy;        ///< enable one-token lookahead deferral
  /// Sliding-window size (max back-reference distance). DEFLATE's
  /// format allows up to 32 KB; smaller windows model memory-
  /// constrained devices (ablation bench).
  int window_size = kLzWindowSize;

  /// Preset for compression level 1..9 (9 = paper's "-9").
  static Lz77Params for_level(int level);
};

/// Tokenize `input` greedily (or lazily per params). Deterministic.
/// The hash-chain arenas (32 K-entry head table + per-position prev
/// chain) live in a per-thread scratch that is reused across calls, so
/// block-by-block callers (selective_compress and the parallel block
/// pipeline's pool workers) do not pay a fresh allocation per block;
/// the "lz77.scratch_reuse" counter counts the avoided allocations.
std::vector<Lz77Token> lz77_tokenize(ByteSpan input, const Lz77Params& params);

/// Reconstruct original bytes from tokens (used by tests; the DEFLATE
/// decoder has its own integrated copy loop).
Bytes lz77_reconstruct(const std::vector<Lz77Token>& tokens);

}  // namespace ecomp::compress

#include "compress/deflate.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "compress/container.h"
#include "compress/huffman.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prof/zone.h"
#include "util/crc32.h"

namespace ecomp::compress {
namespace {

// ------------------------------------------------------------ RFC 1951 data

constexpr int kNumLitLen = 288;   // literal/length alphabet (285 used)
constexpr int kNumDist = 30;      // distance alphabet
constexpr int kNumClen = 19;      // code-length alphabet
constexpr int kMaxCodeLen = 15;
constexpr int kMaxClenLen = 7;
constexpr int kEndOfBlock = 256;

// Length codes 257..285: base length and number of extra bits.
struct LenCode {
  std::uint16_t base;
  std::uint8_t extra;
};
constexpr std::array<LenCode, 29> kLenCodes = {{
    {3, 0},   {4, 0},   {5, 0},   {6, 0},   {7, 0},   {8, 0},
    {9, 0},   {10, 0},  {11, 1},  {13, 1},  {15, 1},  {17, 1},
    {19, 2},  {23, 2},  {27, 2},  {31, 2},  {35, 3},  {43, 3},
    {51, 3},  {59, 3},  {67, 4},  {83, 4},  {99, 4},  {115, 4},
    {131, 5}, {163, 5}, {195, 5}, {227, 5}, {258, 0},
}};

constexpr std::array<LenCode, 30> kDistCodes = {{
    {1, 0},     {2, 0},     {3, 0},     {4, 0},     {5, 1},
    {7, 1},     {9, 2},     {13, 2},    {17, 3},    {25, 3},
    {33, 4},    {49, 4},    {65, 5},    {97, 5},    {129, 6},
    {193, 6},   {257, 7},   {385, 7},   {513, 8},   {769, 8},
    {1025, 9},  {1537, 9},  {2049, 10}, {3073, 10}, {4097, 11},
    {6145, 11}, {8193, 12}, {12289, 12},{16385, 13},{24577, 13},
}};

constexpr std::array<std::uint8_t, kNumClen> kClenOrder = {
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};

/// Map a match length (3..258) to its length code index (0..28).
int length_code(int len) {
  for (int i = 28; i >= 0; --i)
    if (len >= kLenCodes[i].base) return i;
  throw Error("deflate: bad match length");
}

/// Map a distance (1..32768) to its distance code (0..29).
int distance_code(int dist) {
  for (int i = 29; i >= 0; --i)
    if (dist >= kDistCodes[i].base) return i;
  throw Error("deflate: bad distance");
}

std::vector<std::uint8_t> fixed_litlen_lengths() {
  std::vector<std::uint8_t> l(kNumLitLen);
  for (int i = 0; i <= 143; ++i) l[i] = 8;
  for (int i = 144; i <= 255; ++i) l[i] = 9;
  for (int i = 256; i <= 279; ++i) l[i] = 7;
  for (int i = 280; i <= 287; ++i) l[i] = 8;
  return l;
}

std::vector<std::uint8_t> fixed_dist_lengths() {
  return std::vector<std::uint8_t>(kNumDist, 5);
}

// --------------------------------------------------------------- compressor

struct BlockPlan {
  std::vector<std::uint64_t> lit_freq =
      std::vector<std::uint64_t>(kNumLitLen, 0);
  std::vector<std::uint64_t> dist_freq =
      std::vector<std::uint64_t>(kNumDist, 0);
};

BlockPlan census(const std::vector<Lz77Token>& tokens, std::size_t begin,
                 std::size_t end) {
  BlockPlan p;
  for (std::size_t i = begin; i < end; ++i) {
    const auto& t = tokens[i];
    if (t.length == 0) {
      ++p.lit_freq[t.literal];
    } else {
      ++p.lit_freq[257 + length_code(t.length)];
      ++p.dist_freq[distance_code(t.distance)];
    }
  }
  ++p.lit_freq[kEndOfBlock];
  return p;
}

/// Cost in bits of coding the block body with the given code lengths.
std::uint64_t body_cost(const BlockPlan& p,
                        const std::vector<std::uint8_t>& lit_len,
                        const std::vector<std::uint8_t>& dist_len) {
  std::uint64_t bits = 0;
  for (int s = 0; s < kNumLitLen; ++s) {
    if (!p.lit_freq[s]) continue;
    std::uint64_t extra = 0;
    if (s > kEndOfBlock) extra = kLenCodes[s - 257].extra;
    bits += p.lit_freq[s] * (lit_len[s] + extra);
  }
  for (int s = 0; s < kNumDist; ++s) {
    if (!p.dist_freq[s]) continue;
    bits += p.dist_freq[s] * (dist_len[s] + kDistCodes[s].extra);
  }
  return bits;
}

/// RLE of code lengths into the 0..18 alphabet (16: repeat prev 3-6;
/// 17: zeros 3-10; 18: zeros 11-138). Returns (symbol, extra) pairs.
struct ClenItem {
  std::uint8_t sym;
  std::uint8_t extra_val;
};
std::vector<ClenItem> rle_code_lengths(
    const std::vector<std::uint8_t>& lengths) {
  std::vector<ClenItem> out;
  std::size_t i = 0;
  while (i < lengths.size()) {
    const std::uint8_t v = lengths[i];
    std::size_t run = 1;
    while (i + run < lengths.size() && lengths[i + run] == v) ++run;
    if (v == 0) {
      std::size_t left = run;
      while (left >= 11) {
        const std::size_t take = std::min<std::size_t>(left, 138);
        out.push_back({18, static_cast<std::uint8_t>(take - 11)});
        left -= take;
      }
      if (left >= 3) {
        out.push_back({17, static_cast<std::uint8_t>(left - 3)});
        left = 0;
      }
      while (left--) out.push_back({0, 0});
    } else {
      out.push_back({v, 0});
      std::size_t left = run - 1;
      while (left >= 3) {
        const std::size_t take = std::min<std::size_t>(left, 6);
        out.push_back({16, static_cast<std::uint8_t>(take - 3)});
        left -= take;
      }
      while (left--) out.push_back({v, 0});
    }
    i += run;
  }
  return out;
}

int clen_extra_bits(int sym) {
  if (sym == 16) return 2;
  if (sym == 17) return 3;
  if (sym == 18) return 7;
  return 0;
}

void emit_tokens(BitWriterLsb& out, const std::vector<Lz77Token>& tokens,
                 std::size_t begin, std::size_t end,
                 const huffman::EncoderLsb& lit_enc,
                 const huffman::EncoderLsb& dist_enc) {
  for (std::size_t i = begin; i < end; ++i) {
    const auto& t = tokens[i];
    if (t.length == 0) {
      lit_enc.encode(out, t.literal);
    } else {
      const int lc = length_code(t.length);
      lit_enc.encode(out, static_cast<std::uint32_t>(257 + lc));
      if (kLenCodes[lc].extra)
        out.put(static_cast<std::uint32_t>(t.length - kLenCodes[lc].base),
                kLenCodes[lc].extra);
      const int dc = distance_code(t.distance);
      dist_enc.encode(out, static_cast<std::uint32_t>(dc));
      if (kDistCodes[dc].extra)
        out.put(static_cast<std::uint32_t>(t.distance - kDistCodes[dc].base),
                kDistCodes[dc].extra);
    }
  }
  lit_enc.encode(out, kEndOfBlock);
}

/// Emit one compressed block choosing stored / fixed / dynamic by cost.
/// `raw` spans the original bytes covered by tokens[begin, end).
void emit_block(BitWriterLsb& out, ByteSpan raw,
                const std::vector<Lz77Token>& tokens, std::size_t begin,
                std::size_t end, bool final) {
  // One zone per block: census, tree builds, and token emission all
  // attribute to huffman.encode (lz77.match already ended upstream).
  ECOMP_PROF_ZONE("huffman.encode");
  const BlockPlan plan = census(tokens, begin, end);

  auto dyn_lit = huffman::build_code_lengths(plan.lit_freq, kMaxCodeLen);
  auto dyn_dist = huffman::build_code_lengths(plan.dist_freq, kMaxCodeLen);
  // RFC 1951 requires HDIST >= 1; if no distances used, give code 0 a
  // 1-bit dummy code.
  if (std::all_of(dyn_dist.begin(), dyn_dist.end(),
                  [](std::uint8_t l) { return l == 0; }))
    dyn_dist[0] = 1;

  // Sizes of the three encodings.
  const auto fixed_lit = fixed_litlen_lengths();
  const auto fixed_dist = fixed_dist_lengths();
  const std::uint64_t fixed_bits = 3 + body_cost(plan, fixed_lit, fixed_dist);

  int hlit = kNumLitLen;
  while (hlit > 257 && dyn_lit[hlit - 1] == 0) --hlit;
  int hdist = kNumDist;
  while (hdist > 1 && dyn_dist[hdist - 1] == 0) --hdist;
  std::vector<std::uint8_t> all_lengths(dyn_lit.begin(),
                                        dyn_lit.begin() + hlit);
  all_lengths.insert(all_lengths.end(), dyn_dist.begin(),
                     dyn_dist.begin() + hdist);
  const auto clen_items = rle_code_lengths(all_lengths);
  std::vector<std::uint64_t> clen_freq(kNumClen, 0);
  for (const auto& it : clen_items) ++clen_freq[it.sym];
  auto clen_lengths = huffman::build_code_lengths(clen_freq, kMaxClenLen);
  int hclen = kNumClen;
  while (hclen > 4 && clen_lengths[kClenOrder[hclen - 1]] == 0) --hclen;

  std::uint64_t dyn_header_bits = 3 + 5 + 5 + 4 + 3ull * hclen;
  for (const auto& it : clen_items)
    dyn_header_bits += clen_lengths[it.sym] + clen_extra_bits(it.sym);
  const std::uint64_t dyn_bits =
      dyn_header_bits + body_cost(plan, dyn_lit, dyn_dist);

  // Stored cost: align + BTYPE bits + LEN/NLEN + raw bytes.
  const std::uint64_t stored_bits =
      3 + ((8 - ((out.bit_count() + 3) % 8)) % 8) + 32 + 8ull * raw.size();
  const bool storable = raw.size() <= 0xffff;

  if (storable && stored_bits <= dyn_bits && stored_bits <= fixed_bits) {
    out.put(final ? 1 : 0, 1);
    out.put(0, 2);  // BTYPE=00
    out.align_to_byte();
    out.put(static_cast<std::uint32_t>(raw.size()), 16);
    out.put(static_cast<std::uint32_t>(~raw.size() & 0xffff), 16);
    for (std::uint8_t b : raw) out.put_aligned_byte(b);
    return;
  }

  if (fixed_bits <= dyn_bits) {
    out.put(final ? 1 : 0, 1);
    out.put(1, 2);  // BTYPE=01
    huffman::EncoderLsb lit_enc(fixed_lit), dist_enc(fixed_dist);
    emit_tokens(out, tokens, begin, end, lit_enc, dist_enc);
    return;
  }

  out.put(final ? 1 : 0, 1);
  out.put(2, 2);  // BTYPE=10
  out.put(static_cast<std::uint32_t>(hlit - 257), 5);
  out.put(static_cast<std::uint32_t>(hdist - 1), 5);
  out.put(static_cast<std::uint32_t>(hclen - 4), 4);
  for (int i = 0; i < hclen; ++i)
    out.put(clen_lengths[kClenOrder[i]], 3);
  huffman::EncoderLsb clen_enc(clen_lengths);
  for (const auto& it : clen_items) {
    clen_enc.encode(out, it.sym);
    const int eb = clen_extra_bits(it.sym);
    if (eb) out.put(it.extra_val, eb);
  }
  huffman::EncoderLsb lit_enc(dyn_lit), dist_enc(dyn_dist);
  emit_tokens(out, tokens, begin, end, lit_enc, dist_enc);
}

constexpr std::size_t kMaxBlockTokens = 48 * 1024;

}  // namespace

void deflate_raw(ByteSpan input, const Lz77Params& params,
                 BitWriterLsb& out) {
  ECOMP_TRACE_SPAN("deflate.raw", "codec");
  ECOMP_COUNT_N("deflate.bytes_in", input.size());
  const std::uint64_t bits_before = out.bit_count();
  if (input.empty()) {
    // Single empty stored block.
    out.put(1, 1);
    out.put(0, 2);
    out.align_to_byte();
    out.put(0, 16);
    out.put(0xffff, 16);
    ECOMP_COUNT_N("deflate.bytes_out", (out.bit_count() - bits_before + 7) / 8);
    return;
  }
  const auto tokens = lz77_tokenize(input, params);

  // Split into blocks of at most kMaxBlockTokens tokens; track the raw
  // byte range each covers so stored blocks are possible.
  std::size_t tok_begin = 0;
  std::size_t raw_begin = 0;
  while (tok_begin < tokens.size()) {
    std::size_t tok_end =
        std::min(tokens.size(), tok_begin + kMaxBlockTokens);
    std::size_t raw_end = raw_begin;
    for (std::size_t i = tok_begin; i < tok_end; ++i)
      raw_end += tokens[i].length == 0 ? 1 : tokens[i].length;
    // Stored blocks cap at 64 KB of raw data; if this block is larger it
    // simply won't take the stored path (storable == false).
    const bool final = tok_end == tokens.size();
    emit_block(out, input.subspan(raw_begin, raw_end - raw_begin), tokens,
               tok_begin, tok_end, final);
    tok_begin = tok_end;
    raw_begin = raw_end;
    ECOMP_COUNT("deflate.blocks");
  }
  ECOMP_COUNT_N("deflate.bytes_out", (out.bit_count() - bits_before + 7) / 8);
}

Bytes inflate_raw(BitReaderLsb& in, std::size_t size_hint) {
  ECOMP_TRACE_SPAN("inflate.raw", "codec");
  Bytes out;
  out.reserve(size_hint);
  const auto fixed_lit = fixed_litlen_lengths();
  const auto fixed_dist = fixed_dist_lengths();

  bool final = false;
  while (!final) {
    ECOMP_PROF_ZONE("huffman.decode");
    final = in.get(1) != 0;
    const std::uint32_t btype = in.get(2);
    if (btype == 0) {
      in.align_to_byte();
      const std::uint32_t len = in.get(16);
      const std::uint32_t nlen = in.get(16);
      if ((len ^ nlen) != 0xffff) throw Error("inflate: bad stored header");
      for (std::uint32_t i = 0; i < len; ++i)
        out.push_back(in.get_aligned_byte());
      continue;
    }
    if (btype == 3) throw Error("inflate: reserved block type");

    std::unique_ptr<huffman::DecoderLsb> lit_dec, dist_dec;
    if (btype == 1) {
      lit_dec = std::make_unique<huffman::DecoderLsb>(fixed_lit);
      dist_dec = std::make_unique<huffman::DecoderLsb>(fixed_dist);
    } else {
      const int hlit = static_cast<int>(in.get(5)) + 257;
      const int hdist = static_cast<int>(in.get(5)) + 1;
      const int hclen = static_cast<int>(in.get(4)) + 4;
      if (hlit > kNumLitLen || hdist > kNumDist)
        throw Error("inflate: bad HLIT/HDIST");
      std::vector<std::uint8_t> clen_lengths(kNumClen, 0);
      for (int i = 0; i < hclen; ++i)
        clen_lengths[kClenOrder[i]] =
            static_cast<std::uint8_t>(in.get(3));
      huffman::DecoderLsb clen_dec(clen_lengths);
      std::vector<std::uint8_t> all(hlit + hdist, 0);
      std::size_t i = 0;
      while (i < all.size()) {
        const std::uint32_t sym = clen_dec.decode(in);
        if (sym < 16) {
          all[i++] = static_cast<std::uint8_t>(sym);
        } else if (sym == 16) {
          if (i == 0) throw Error("inflate: repeat with no previous length");
          const std::uint32_t n = 3 + in.get(2);
          if (i + n > all.size()) throw Error("inflate: repeat overflow");
          for (std::uint32_t k = 0; k < n; ++k, ++i) all[i] = all[i - 1];
        } else if (sym == 17) {
          const std::uint32_t n = 3 + in.get(3);
          if (i + n > all.size()) throw Error("inflate: zero-run overflow");
          i += n;
        } else {
          const std::uint32_t n = 11 + in.get(7);
          if (i + n > all.size()) throw Error("inflate: zero-run overflow");
          i += n;
        }
      }
      std::vector<std::uint8_t> lit(all.begin(), all.begin() + hlit);
      lit.resize(kNumLitLen, 0);
      std::vector<std::uint8_t> dist(all.begin() + hlit, all.end());
      dist.resize(kNumDist, 0);
      lit_dec = std::make_unique<huffman::DecoderLsb>(lit);
      dist_dec = std::make_unique<huffman::DecoderLsb>(dist);
    }

    while (true) {
      const std::uint32_t sym = lit_dec->decode(in);
      if (sym < 256) {
        out.push_back(static_cast<std::uint8_t>(sym));
        continue;
      }
      if (sym == kEndOfBlock) break;
      if (sym > 285) throw Error("inflate: bad length symbol");
      const LenCode& lc = kLenCodes[sym - 257];
      const int len =
          lc.base + static_cast<int>(lc.extra ? in.get(lc.extra) : 0);
      const std::uint32_t dsym = dist_dec->decode(in);
      if (dsym >= kNumDist) throw Error("inflate: bad distance symbol");
      const LenCode& dc = kDistCodes[dsym];
      const std::size_t dist =
          dc.base + static_cast<std::size_t>(dc.extra ? in.get(dc.extra) : 0);
      if (dist == 0 || dist > out.size())
        throw Error("inflate: distance beyond output");
      // Same overlap-safe bulk copy as lz77_reconstruct: straight memcpy
      // when source and destination are disjoint, period-multiple strides
      // for overlapping repeats, byte loop for short RLE-like periods.
      const std::size_t n = static_cast<std::size_t>(len);
      const std::size_t start = out.size();
      out.resize(start + n);
      std::uint8_t* dst = out.data() + start;
      const std::uint8_t* src = dst - dist;
      if (dist >= n) {
        std::memcpy(dst, src, n);
      } else if (dist >= 8) {
        std::size_t w = 0;
        while (w < n) {
          const std::size_t stride = ((w + dist) / dist) * dist;
          const std::size_t c = std::min(stride, n - w);
          std::memcpy(dst + w, dst + w - stride, c);
          w += c;
        }
      } else {
        for (std::size_t k = 0; k < n; ++k) dst[k] = src[k];
      }
    }
  }
  return out;
}

Bytes DeflateCodec::compress(ByteSpan input) const {
  ECOMP_TRACE_SPAN("deflate.compress", "codec");
  ECOMP_SLIDING_TIMER("deflate.compress_us");
  Bytes out;
  std::uint32_t crc;
  {
    ECOMP_PROF_ZONE("crc32");
    crc = crc32(input);
  }
  write_header(out, kDeflateMagic, input.size(), crc);
  BitWriterLsb bw;
  deflate_raw(input, params_, bw);
  Bytes payload = bw.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Bytes DeflateCodec::decompress(ByteSpan input) const {
  ECOMP_TRACE_SPAN("deflate.decompress", "codec");
  ECOMP_SLIDING_TIMER("deflate.decompress_us");
  const Header h = read_header(input, kDeflateMagic);
  BitReaderLsb br(input.subspan(h.payload_offset));
  Bytes out = inflate_raw(br, h.original_size);
  {
    ECOMP_PROF_ZONE("crc32");
    check_crc(h, out);
  }
  return out;
}

}  // namespace ecomp::compress

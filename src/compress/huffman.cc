#include "compress/huffman.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>

#include "obs/metrics.h"

namespace ecomp::huffman {

std::vector<std::uint8_t> build_code_lengths(
    const std::vector<std::uint64_t>& freqs, int max_len) {
  const std::size_t n = freqs.size();
  if (max_len <= 0 || max_len > 31) throw Error("huffman: bad max_len");
  ECOMP_COUNT("huffman.table_builds");
  std::vector<std::uint8_t> lengths(n, 0);

  std::vector<std::uint32_t> live;
  for (std::uint32_t i = 0; i < n; ++i)
    if (freqs[i] > 0) live.push_back(i);
  if (live.empty()) return lengths;
  if (live.size() == 1) {
    lengths[live[0]] = 1;
    return lengths;
  }
  if (live.size() > (std::size_t{1} << max_len))
    throw Error("huffman: alphabet larger than code space");

  // Standard heap construction over (freq, node). Internal nodes get
  // indices >= n. parent[] lets us read off depths afterwards.
  struct Node {
    std::uint64_t freq;
    std::uint32_t id;
    bool operator>(const Node& o) const {
      return freq != o.freq ? freq > o.freq : id > o.id;
    }
  };
  std::priority_queue<Node, std::vector<Node>, std::greater<>> heap;
  const std::uint32_t total_ids =
      static_cast<std::uint32_t>(n + live.size());
  std::vector<std::uint32_t> parent(total_ids, 0);
  std::vector<bool> in_tree(total_ids, false);
  for (auto s : live) {
    heap.push({freqs[s], s});
    in_tree[s] = true;
  }
  std::uint32_t next_id = static_cast<std::uint32_t>(n);
  while (heap.size() > 1) {
    Node a = heap.top();
    heap.pop();
    Node b = heap.top();
    heap.pop();
    parent[a.id] = next_id;
    parent[b.id] = next_id;
    in_tree[next_id] = true;
    heap.push({a.freq + b.freq, next_id});
    ++next_id;
  }
  const std::uint32_t root = heap.top().id;

  // Depths top-down with clamping, zlib-style: a node's depth is its
  // (already clamped) parent's depth + 1, and `overflow` counts every
  // clamped node — internal nodes included. That makes the Kraft excess
  // exactly overflow/2 · 2^-max_len, which the repair loop removes.
  // Parents always carry larger ids than their children, so descending
  // id order visits parents first.
  int overflow = 0;
  std::vector<std::uint32_t> count_at_len(max_len + 2, 0);
  std::vector<int> depth(total_ids, 0);
  for (std::uint32_t id = root + 1; id-- > 0;) {
    if (!in_tree[id]) continue;
    if (id != root) {
      int d = depth[parent[id]] + 1;
      if (d > max_len) {
        d = max_len;
        ++overflow;
      }
      depth[id] = d;
    }
    if (id < n) {  // leaf
      lengths[id] = static_cast<std::uint8_t>(depth[id]);
      ++count_at_len[depth[id]];
    }
  }

  // zlib-style overflow repair: move leaves down to rebalance Kraft.
  while (overflow > 0) {
    int bits = max_len - 1;
    while (count_at_len[bits] == 0) --bits;
    --count_at_len[bits];        // one leaf at `bits` becomes internal
    count_at_len[bits + 1] += 2; // gains two leaves one level down
    --count_at_len[max_len];     // one clamped leaf is absorbed
    overflow -= 2;
  }

  // Re-assign lengths to symbols: shortest lengths to most frequent.
  std::sort(live.begin(), live.end(), [&](std::uint32_t a, std::uint32_t b) {
    return freqs[a] != freqs[b] ? freqs[a] > freqs[b] : a < b;
  });
  std::size_t idx = 0;
  for (int len = 1; len <= max_len; ++len)
    for (std::uint32_t c = 0; c < count_at_len[len]; ++c)
      lengths[live[idx++]] = static_cast<std::uint8_t>(len);
  return lengths;
}

std::vector<std::uint32_t> canonical_codes(
    const std::vector<std::uint8_t>& lengths) {
  int max_len = 0;
  for (auto l : lengths) max_len = std::max<int>(max_len, l);
  std::vector<std::uint32_t> bl_count(max_len + 1, 0);
  for (auto l : lengths)
    if (l) ++bl_count[l];

  // Kraft check.
  std::uint64_t kraft = 0;
  for (int l = 1; l <= max_len; ++l)
    kraft += std::uint64_t{bl_count[l]} << (max_len - l);
  if (max_len > 0 && kraft > (std::uint64_t{1} << max_len))
    throw Error("huffman: oversubscribed code lengths");

  std::vector<std::uint32_t> next_code(max_len + 1, 0);
  std::uint32_t code = 0;
  for (int l = 1; l <= max_len; ++l) {
    code = (code + bl_count[l - 1]) << 1;
    next_code[l] = code;
  }
  std::vector<std::uint32_t> codes(lengths.size(), 0);
  for (std::size_t s = 0; s < lengths.size(); ++s)
    if (lengths[s]) codes[s] = next_code[lengths[s]]++;
  return codes;
}

std::uint32_t reverse_bits(std::uint32_t code, int len) {
  std::uint32_t r = 0;
  for (int i = 0; i < len; ++i) {
    r = (r << 1) | (code & 1);
    code >>= 1;
  }
  return r;
}

// ------------------------------------------------------------- flat tables

void FlatTable::build(const std::vector<std::uint8_t>& lengths,
                      const std::vector<std::uint32_t>& codes, bool msb) {
  int max_len = 0;
  for (auto l : lengths) max_len = std::max<int>(max_len, l);
  arena.clear();
  root_bits = 0;
  if (max_len == 0) return;

  struct Rec {
    std::uint32_t code;  // LSB: bit-reversed; MSB: canonical
    std::uint8_t len;
    std::uint16_t symbol;
  };
  std::vector<Rec> recs;
  for (std::size_t s = 0; s < lengths.size(); ++s)
    if (lengths[s])
      recs.push_back(
          {codes[s], lengths[s], static_cast<std::uint16_t>(s)});
  root_bits = std::min(max_len, kRootBits);

  // The next `take` transmitted bits of a code, `consumed` bits in. For
  // MSB streams that is a high slice of the canonical code; for LSB
  // streams (codes pre-reversed) it is a low slice.
  const auto chunk = [msb](const Rec& r, int consumed, int take) {
    if (msb)
      return (r.code >> (r.len - consumed - take)) & ((1u << take) - 1);
    return (r.code >> consumed) & ((1u << take) - 1);
  };

  // Build one table over `group` (codes sharing the same consumed-bit
  // prefix), recursing into chained subtables for codes that do not fit
  // in this level's `bits` index. Returns the table's arena offset.
  const auto build_level = [&](auto&& self, const std::vector<Rec>& group,
                               int consumed, int bits) -> std::uint32_t {
    const std::size_t offset = arena.size();
    if (offset > 0xffffffu) throw Error("huffman: decode table overflow");
    arena.resize(offset + (std::size_t{1} << bits), 0);
    std::map<std::uint32_t, std::vector<Rec>> children;
    for (const Rec& r : group) {
      const int rem = r.len - consumed;
      if (rem <= bits) {
        // Direct hit: fill every slot whose leading `rem` index bits
        // match the remaining code bits.
        const std::uint32_t entry =
            (static_cast<std::uint32_t>(rem) << 16) | r.symbol;
        const std::uint32_t fills = 1u << (bits - rem);
        if (msb) {
          const std::uint32_t base = (r.code & ((1u << rem) - 1))
                                     << (bits - rem);
          for (std::uint32_t lo = 0; lo < fills; ++lo)
            arena[offset + base + lo] = entry;
        } else {
          const std::uint32_t base = (r.code >> consumed) & ((1u << rem) - 1);
          for (std::uint32_t hi = 0; hi < fills; ++hi)
            arena[offset + (hi << rem) + base] = entry;
        }
      } else {
        children[chunk(r, consumed, bits)].push_back(r);
      }
    }
    for (const auto& [key, sub] : children) {
      int max_rem = 0;
      for (const Rec& r : sub)
        max_rem = std::max<int>(max_rem, r.len - consumed - bits);
      const int sub_bits = std::min(max_rem, kMaxSubBits);
      const std::uint32_t child = self(self, sub, consumed + bits, sub_bits);
      arena[offset + key] = kLinkFlag |
                            (static_cast<std::uint32_t>(sub_bits) << 24) |
                            child;
    }
    return static_cast<std::uint32_t>(offset);
  };
  build_level(build_level, recs, 0, root_bits);
}

namespace {

/// One flat-table decode step, shared by both bit orders: peek the
/// level's index, follow link entries (consuming each level's bits),
/// then consume the matched code's remaining bits.
template <typename Reader>
std::uint32_t flat_decode(const FlatTable& flat, Reader& in) {
  int bits = flat.root_bits;
  std::uint32_t e = flat.arena[in.peek(bits)];
  while (e & FlatTable::kLinkFlag) {
    in.skip(bits);
    bits = static_cast<int>((e >> 24) & 0x1fu);
    e = flat.arena[(e & 0xffffffu) + in.peek(bits)];
  }
  if (e == 0) throw Error("huffman: invalid code in stream");
  in.skip(static_cast<int>(e >> 16));
  return e & 0xffffu;
}

}  // namespace

// ----------------------------------------------------------------- LSB pair

EncoderLsb::EncoderLsb(const std::vector<std::uint8_t>& lengths)
    : lengths_(lengths), codes_(canonical_codes(lengths)) {
  for (std::size_t s = 0; s < codes_.size(); ++s)
    codes_[s] = reverse_bits(codes_[s], lengths_[s]);
}

void EncoderLsb::encode(BitWriterLsb& out, std::uint32_t symbol) const {
  const std::uint8_t len = lengths_[symbol];
  if (len == 0) throw Error("huffman: encoding symbol with no code");
  out.put(codes_[symbol], len);
}

DecoderLsb::DecoderLsb(const std::vector<std::uint8_t>& lengths) {
  for (auto l : lengths) max_len_ = std::max<int>(max_len_, l);
  if (max_len_ == 0) return;
  auto codes = canonical_codes(lengths);
  for (std::size_t s = 0; s < codes.size(); ++s)
    codes[s] = reverse_bits(codes[s], lengths[s]);
  flat_.build(lengths, codes, /*msb=*/false);

  // Canonical walk structures for the decode_walk reference path.
  first_code_.assign(max_len_ + 1, 0);
  first_index_.assign(max_len_ + 1, 0);
  std::vector<std::uint32_t> bl_count(max_len_ + 1, 0);
  for (auto l : lengths)
    if (l) ++bl_count[l];
  std::uint32_t code = 0, index = 0;
  for (int l = 1; l <= max_len_; ++l) {
    code = (code + bl_count[l - 1]) << 1;
    first_code_[l] = code;
    first_index_[l] = index;
    index += bl_count[l];
  }
  sorted_.clear();
  for (int l = 1; l <= max_len_; ++l)
    for (std::size_t s = 0; s < lengths.size(); ++s)
      if (lengths[s] == l) sorted_.push_back(static_cast<std::uint16_t>(s));
}

std::uint32_t DecoderLsb::decode(BitReaderLsb& in) const {
  if (max_len_ == 0) throw Error("huffman: decode with empty code");
  return flat_decode(flat_, in);
}

std::uint32_t DecoderLsb::decode_walk(BitReaderLsb& in) const {
  if (max_len_ == 0) throw Error("huffman: decode with empty code");
  // Canonical walk, MSB accumulation of reversed bits.
  std::uint32_t code = 0;
  for (int len = 1; len <= max_len_; ++len) {
    code = (code << 1) | in.get(1);
    const std::uint32_t count =
        (len < max_len_ ? first_index_[len + 1]
                        : static_cast<std::uint32_t>(sorted_.size())) -
        first_index_[len];
    if (count > 0 && code >= first_code_[len] &&
        code < first_code_[len] + count)
      return sorted_[first_index_[len] + (code - first_code_[len])];
  }
  throw Error("huffman: invalid code in stream");
}

// ----------------------------------------------------------------- MSB pair

EncoderMsb::EncoderMsb(const std::vector<std::uint8_t>& lengths)
    : lengths_(lengths), codes_(canonical_codes(lengths)) {}

void EncoderMsb::encode(BitWriterMsb& out, std::uint32_t symbol) const {
  const std::uint8_t len = lengths_[symbol];
  if (len == 0) throw Error("huffman: encoding symbol with no code");
  out.put(codes_[symbol], len);
}

DecoderMsb::DecoderMsb(const std::vector<std::uint8_t>& lengths) {
  for (auto l : lengths) max_len_ = std::max<int>(max_len_, l);
  if (max_len_ == 0) return;
  min_len_ = max_len_;
  for (auto l : lengths)
    if (l) min_len_ = std::min<int>(min_len_, l);
  flat_.build(lengths, canonical_codes(lengths), /*msb=*/true);
  first_code_.assign(max_len_ + 1, 0);
  first_index_.assign(max_len_ + 1, 0);
  std::vector<std::uint32_t> bl_count(max_len_ + 1, 0);
  for (auto l : lengths)
    if (l) ++bl_count[l];
  std::uint32_t code = 0, index = 0;
  for (int l = 1; l <= max_len_; ++l) {
    code = (code + bl_count[l - 1]) << 1;
    first_code_[l] = code;
    first_index_[l] = index;
    index += bl_count[l];
  }
  for (int l = 1; l <= max_len_; ++l)
    for (std::size_t s = 0; s < lengths.size(); ++s)
      if (lengths[s] == l) sorted_.push_back(static_cast<std::uint16_t>(s));
}

std::uint32_t DecoderMsb::decode(BitReaderMsb& in) const {
  if (max_len_ == 0) throw Error("huffman: decode with empty code");
  return flat_decode(flat_, in);
}

std::uint32_t DecoderMsb::decode_walk(BitReaderMsb& in) const {
  if (max_len_ == 0) throw Error("huffman: decode with empty code");
  std::uint32_t code = in.get(min_len_);
  for (int len = min_len_; len <= max_len_; ++len) {
    const std::uint32_t count =
        (len < max_len_ ? first_index_[len + 1]
                        : static_cast<std::uint32_t>(sorted_.size())) -
        first_index_[len];
    if (count > 0 && code >= first_code_[len] &&
        code < first_code_[len] + count)
      return sorted_[first_index_[len] + (code - first_code_[len])];
    if (len < max_len_) code = (code << 1) | in.get(1);
  }
  throw Error("huffman: invalid code in stream");
}

}  // namespace ecomp::huffman

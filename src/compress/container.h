// Shared framed-container helpers: every codec's output carries a magic
// tag, the original size, and a CRC-32 of the original data, in the
// spirit of the gzip member format.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace ecomp::compress {

/// Append a little-endian unsigned integer of `n` bytes.
void put_le(Bytes& out, std::uint64_t v, int n);

/// Read a little-endian unsigned integer, advancing `pos`. Throws on
/// truncation.
std::uint64_t get_le(ByteSpan in, std::size_t& pos, int n);

/// Append an unsigned LEB128 varint.
void put_varint(Bytes& out, std::uint64_t v);

/// Read an unsigned LEB128 varint, advancing `pos`.
std::uint64_t get_varint(ByteSpan in, std::size_t& pos);

/// Standard header layout used by all ecomp codecs:
///   magic (2 bytes) | varint original_size | crc32 (4 bytes LE)
struct Header {
  std::uint64_t original_size = 0;
  std::uint32_t crc = 0;
  std::size_t payload_offset = 0;  // where codec payload begins
};

void write_header(Bytes& out, std::uint16_t magic, std::uint64_t orig_size,
                  std::uint32_t crc);
Header read_header(ByteSpan in, std::uint16_t magic);

/// Verify payload CRC after decode; throws Error on mismatch.
void check_crc(const Header& h, ByteSpan decoded);

}  // namespace ecomp::compress

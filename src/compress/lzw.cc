#include "compress/lzw.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "compress/container.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bitio.h"
#include "util/crc32.h"

namespace ecomp::compress {
namespace {

constexpr std::uint32_t kClearCode = 256;
constexpr std::uint32_t kFirstCode = 257;
constexpr int kMinBits = 9;

// Like ncompress: once the dictionary is full, periodically check the
// running compression factor and emit CLEAR when it degrades.
constexpr std::uint64_t kRatioCheckGap = 10000;  // input bytes per check

/// Code width for the next emit/read given the *maximum value that can
/// appear on the wire at that point* (see the lockstep analysis below).
int width_for(std::uint32_t max_value, int max_bits) {
  const int w = std::bit_width(max_value);
  return std::clamp(w, kMinBits, max_bits);
}

// Lockstep invariant. The encoder emits a code, then inserts a new
// dictionary entry; the decoder reads a code, then inserts. Counting
// emissions/reads k and insertions on both sides shows that just before
// transfer k the maximum value on the wire is
//     V_k = encoder.next_code - 1 = decoder.next_code
// (the decoder's next_code covers the KwKwK case, where the encoder
// emits the entry it inserted on the previous step and the decoder has
// not inserted it yet). Both sides therefore derive the code width from
// their own next_code and stay synchronized by construction, including
// across CLEAR resets (both reset next_code to 257) and dictionary
// saturation (width clamps at max_bits on both sides).

}  // namespace

LzwCodec::LzwCodec(int max_bits) : max_bits_(max_bits) {
  if (max_bits < kMinBits || max_bits > 16)
    throw Error("lzw: max_bits must be in [9,16]");
}

Bytes LzwCodec::compress(ByteSpan input) const {
  ECOMP_TRACE_SPAN("lzw.compress", "codec");
  ECOMP_COUNT_N("lzw.bytes_in", input.size());
  Bytes out;
  write_header(out, kLzwMagic, input.size(), crc32(input));
  out.push_back(static_cast<std::uint8_t>(max_bits_));
  if (input.empty()) {
    ECOMP_COUNT_N("lzw.bytes_out", out.size());
    return out;
  }

  const std::uint32_t max_code = (1u << max_bits_) - 1;
  BitWriterLsb bw;
  std::unordered_map<std::uint64_t, std::uint32_t> dict;
  auto key = [](std::uint32_t prefix, std::uint8_t byte) {
    return (std::uint64_t{prefix} << 8) | byte;
  };
  std::uint32_t next_code = kFirstCode;
  bool full = false;

  std::uint32_t cur = input[0];
  std::uint64_t in_count = 1;
  std::uint64_t next_ratio_check = kRatioCheckGap;
  double best_factor = 0.0;

  auto emit = [&](std::uint32_t code) {
    bw.put(code, width_for(next_code - 1, max_bits_));
  };

  for (std::size_t i = 1; i < input.size(); ++i) {
    const std::uint8_t b = input[i];
    ++in_count;
    const auto it = dict.find(key(cur, b));
    if (it != dict.end()) {
      cur = it->second;
      continue;
    }
    emit(cur);
    if (!full) {
      dict.emplace(key(cur, b), next_code);
      if (next_code >= max_code) {
        full = true;
        best_factor = 0.0;
      }
      ++next_code;  // runs once past max_code when full; width clamps
    } else if (in_count >= next_ratio_check) {
      next_ratio_check = in_count + kRatioCheckGap;
      const double factor = static_cast<double>(in_count) /
                            (static_cast<double>(bw.bit_count()) / 8.0 + 1.0);
      if (factor > best_factor) {
        best_factor = factor;
      } else {
        ECOMP_COUNT("lzw.dict_resets");
        emit(kClearCode);
        dict.clear();
        next_code = kFirstCode;
        full = false;
      }
    }
    cur = b;
  }
  emit(cur);

  Bytes payload = bw.take();
  out.insert(out.end(), payload.begin(), payload.end());
  ECOMP_COUNT_N("lzw.bytes_out", out.size());
  return out;
}

Bytes LzwCodec::decompress(ByteSpan input) const {
  ECOMP_TRACE_SPAN("lzw.decompress", "codec");
  const Header h = read_header(input, kLzwMagic);
  std::size_t pos = h.payload_offset;
  if (pos >= input.size()) throw Error("lzw: truncated stream");
  const int stream_max_bits = input[pos++];
  if (stream_max_bits < kMinBits || stream_max_bits > 16)
    throw Error("lzw: corrupt max_bits");
  Bytes out;
  out.reserve(h.original_size);
  if (h.original_size == 0) {
    check_crc(h, out);
    return out;
  }
  const std::uint32_t max_code = (1u << stream_max_bits) - 1;

  BitReaderLsb br(input.subspan(pos));

  // code -> (prefix code, appended byte); strings materialize backwards.
  struct Entry {
    std::uint32_t prefix;
    std::uint8_t last;
  };
  std::vector<Entry> dict;
  std::uint32_t next_code = kFirstCode;

  Bytes scratch;
  auto expand = [&](std::uint32_t code) -> const Bytes& {
    scratch.clear();
    while (code >= kFirstCode) {
      if (code - kFirstCode >= dict.size())
        throw Error("lzw: dangling prefix");
      const Entry& e = dict[code - kFirstCode];
      scratch.push_back(e.last);
      code = e.prefix;
    }
    scratch.push_back(static_cast<std::uint8_t>(code));
    std::reverse(scratch.begin(), scratch.end());
    return scratch;
  };

  auto read_code = [&]() {
    return br.get(width_for(next_code, stream_max_bits));
  };

  std::uint32_t prev = read_code();
  if (prev > 255) throw Error("lzw: first code must be a literal");
  out.push_back(static_cast<std::uint8_t>(prev));

  while (out.size() < h.original_size) {
    const std::uint32_t code = read_code();
    if (code == kClearCode) {
      dict.clear();
      next_code = kFirstCode;
      prev = read_code();
      if (prev > 255) throw Error("lzw: code after clear must be literal");
      out.push_back(static_cast<std::uint8_t>(prev));
      continue;
    }
    const std::uint32_t avail =
        kFirstCode + static_cast<std::uint32_t>(dict.size());
    if (code > avail) throw Error("lzw: code out of range");

    std::uint8_t first;
    if (code == avail) {
      // KwKwK: the string is expand(prev) + first byte of expand(prev).
      const Bytes& p = expand(prev);
      first = p[0];
      out.insert(out.end(), p.begin(), p.end());
      out.push_back(first);
    } else {
      const Bytes& s = expand(code);
      first = s[0];
      out.insert(out.end(), s.begin(), s.end());
    }

    if (next_code <= max_code) {
      dict.push_back({prev, first});
      ++next_code;
    } else {
      ++next_code;       // mirror the encoder's one-past increment …
      next_code = max_code + 1;  // … but never beyond, so width clamps
    }
    prev = code;
  }
  check_crc(h, out);
  return out;
}

}  // namespace ecomp::compress
